"""Incremental diskless checkpointing (Plank & Li, FTCS'94) — the related-
work baseline the paper rules out for HPL.

Only pages modified since the last checkpoint are copied into the
checkpoint buffer and folded into the group checksum (XOR is linear, so
``C_new = C_old ^ group-checksum(delta)`` with ``delta = new ^ old`` zero on
clean pages).  An **undo log** holds the pre-update value of every dirty
page plus the old checksum, making the update window recoverable: a failure
mid-update rolls every survivor back to the previous epoch before the usual
group reconstruction.

Costs are charged on *dirty* bytes (we model hardware/page-fault dirty
tracking; the simulator detects dirtiness by comparing against B, but that
mechanism is free, as a real write-protection scheme would be).

Why the paper rejects it for HPL (§1): "HPL has a big memory footprint —
almost every byte is modified between two checkpoints", so the dirty set is
the whole workspace; the undo buffer must then be as large as the
checkpoint itself, and the scheme degenerates to a double-checkpoint with
extra bookkeeping.  ``repro.analysis.ablations.ablation_incremental``
demonstrates exactly that crossover.

Memory per rank: B (M) + C + C_undo (M/(N-1) each) + undo buffer
(``undo_fraction * M``) — for full-footprint applications this exceeds the
self-checkpoint's 2M + 2M/(N-1).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ckpt.protocol import Checkpointer, CheckpointInfo, RestoreReport
from repro.sim.errors import UnrecoverableError

_U, _B, _R = 1, 2, 3  # control flags: undo-ready, update-done, resumed


class IncrementalCheckpoint(Checkpointer):
    """Dirty-page incremental checkpoint with undo-log crash consistency."""

    N_FLAGS = 3
    METHOD = "incremental"

    def __init__(
        self,
        *args,
        page_bytes: int = 4096,
        undo_fraction: float = 1.0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if self.encoder.op != "xor":
            raise ValueError(
                "incremental checkpointing relies on XOR's linearity for "
                "delta checksum folding; op='sum' is not supported"
            )
        if page_bytes < 8 or page_bytes % 8:
            raise ValueError("page_bytes must be a positive multiple of 8")
        if not 0 < undo_fraction <= 1.0:
            raise ValueError("undo_fraction must be in (0, 1]")
        self.page_bytes = page_bytes
        self.undo_fraction = undo_fraction
        #: dirty-byte history, one entry per checkpoint (for the ablation)
        self.dirty_bytes_history: List[int] = []

    # workspace in ordinary process memory; B is the SHM reference copy
    def _alloc_array(self, name: str, shape, dtype) -> np.ndarray:
        arr = np.zeros(shape, dtype=dtype)
        self.ctx.malloc(arr.nbytes)
        return arr

    def _create_segments(self) -> None:
        self._ctrl = self._make_ctrl()
        self._b = self.ctx.shm_create(
            self._seg("B"), self._padded, np.uint8, exist_ok=True
        ).array
        self._c = self.ctx.shm_create(
            self._seg("C"), self._cs_size, np.uint8, exist_ok=True
        ).array
        self._c_undo = self.ctx.shm_create(
            self._seg("Cu"), self._cs_size, np.uint8, exist_ok=True
        ).array
        n_pages = -(-self._padded // self.page_bytes)
        self._undo_capacity = max(1, int(n_pages * self.undo_fraction))
        self._undo_pages = self.ctx.shm_create(
            self._seg("U"),
            (self._undo_capacity, self.page_bytes),
            np.uint8,
            exist_ok=True,
        ).array
        self._undo_index = self.ctx.shm_create(
            self._seg("Ui"), self._undo_capacity + 1, np.int64, exist_ok=True
        ).array  # [count, page indices...]

    @property
    def overhead_bytes(self) -> int:
        return (
            self._b.nbytes
            + self._c.nbytes
            + self._c_undo.nbytes
            + self._undo_pages.nbytes
            + self._undo_index.nbytes
            + self._ctrl.nbytes
        )

    # -- dirty detection -----------------------------------------------------------
    def _dirty_pages(self, flat: np.ndarray) -> np.ndarray:
        """Indices of pages where ``flat`` differs from the reference B.

        The page-aligned prefix is compared through zero-copy reshaped
        views; only a non-aligned tail page (if any) is compared as a
        ragged slice — no padded copies of either buffer are made.
        """
        pb = self.page_bytes
        ref = self._b
        n_full = len(flat) // pb
        aligned = n_full * pb
        if n_full:
            diff = (
                flat[:aligned].reshape(n_full, pb)
                != ref[:aligned].reshape(n_full, pb)
            ).any(axis=1)
            dirty = np.nonzero(diff)[0]
        else:
            dirty = np.zeros(0, dtype=np.intp)
        if aligned < len(flat) and not np.array_equal(
            flat[aligned:], ref[aligned:]
        ):
            dirty = np.concatenate([dirty, np.array([n_full], dtype=np.intp)])
        return dirty

    # -- checkpoint ------------------------------------------------------------------
    def checkpoint(self) -> CheckpointInfo:
        self._require_committed()
        ctx = self.ctx
        e = int(self._ctrl[_U]) + 1
        pb = self.page_bytes

        ctx.phase("ckpt.begin")
        self.ckpt_world_entry_barrier()

        flat = self._pack_flat()
        dirty = self._dirty_pages(flat)
        dirty_bytes = int(len(dirty) * pb)
        self.dirty_bytes_history.append(dirty_bytes)
        if len(dirty) > self._undo_capacity:
            raise UnrecoverableError(
                f"rank {ctx.rank}: {len(dirty)} dirty pages exceed the undo "
                f"capacity of {self._undo_capacity}; this application's "
                "footprint defeats incremental checkpointing (raise "
                "undo_fraction, or use the self/double protocols)"
            )

        # delta buffer: new ^ old, zero outside dirty pages (XOR linearity)
        delta = np.zeros(self._padded, dtype=np.uint8)
        for p in dirty:
            lo, hi = p * pb, min((p + 1) * pb, self._padded)
            delta[lo:hi] = flat[lo:hi] ^ self._b[lo:hi]
        enc = self.encoder.encode(delta, effective_bytes=dirty_bytes)
        ctx.phase("ckpt.encode")

        # prepare the undo log, then license the in-place update world-wide
        self._c_undo[:] = self._c
        self._undo_index[0] = len(dirty)
        for i, p in enumerate(dirty):
            lo, hi = p * pb, min((p + 1) * pb, self._padded)
            self._undo_index[1 + i] = p
            self._undo_pages[i, : hi - lo] = self._b[lo:hi]
        self.ctx.world.barrier()
        self._ctrl[_U] = e
        ctx.phase("ckpt.undo_ready")

        # in-place update of B and C (the vulnerable window the undo covers)
        for p in dirty:
            lo, hi = p * pb, min((p + 1) * pb, self._padded)
            self._b[lo:hi] = flat[lo:hi]
        self._c[:] = self._c ^ enc.checksum
        flush_s = self._charge_copy(2 * dirty_bytes + self._c.nbytes)
        self._ctrl[_B] = e
        ctx.phase("ckpt.flush")

        self.ctx.world.barrier()
        self._ctrl[_R] = e
        ctx.phase("ckpt.done")

        self.n_checkpoints += 1
        self.total_encode_seconds += enc.seconds
        self.total_flush_seconds += flush_s
        return CheckpointInfo(
            epoch=e,
            protected_bytes=dirty_bytes,
            checksum_bytes=self._cs_size,
            encode_seconds=enc.seconds,
            flush_seconds=flush_s,
        )

    # -- restore ---------------------------------------------------------------------
    def _rollback(self) -> None:
        """Undo a (possibly partial) in-place update: B pages and C revert
        to the previous epoch.  Idempotent."""
        pb = self.page_bytes
        count = int(self._undo_index[0])
        for i in range(count):
            p = int(self._undo_index[1 + i])
            lo, hi = p * pb, min((p + 1) * pb, self._padded)
            self._b[lo:hi] = self._undo_pages[i, : hi - lo]
        self._c[:] = self._c_undo

    def try_restore(self) -> Optional[RestoreReport]:
        self._require_committed()
        epochs = (
            (int(self._ctrl[_U]), int(self._ctrl[_B]), int(self._ctrl[_R]))
            if self._had_state
            else (0, 0, 0)
        )
        statuses = self._exchange_status(epochs, self._had_state)
        if not any(s.has_state for s in statuses):
            return None
        missing = self._group_missing(statuses)
        if len(missing) > 1:
            raise UnrecoverableError(f"group lost {len(missing)} members")

        e_u = self._world_max(statuses, 0)
        e_r = self._world_max(statuses, 2)

        ctx = self.ctx
        ctx.phase("restore.begin")
        if e_u > e_r:
            # failure during the in-place update of epoch e_u: every
            # survivor whose undo covers e_u rolls back to e_u - 1
            if self._had_state and int(self._ctrl[_U]) == e_u:
                self._rollback()
                self._ctrl[_U] = e_u - 1
                self._ctrl[_B] = e_u - 1
            epoch = e_u - 1
        else:
            epoch = self._world_max(statuses, 1)
        if epoch == 0:
            self._reset_flags()
            return None

        me = self.group.rank
        if missing:
            if me in missing:
                rebuilt = self.encoder.recover(None, None, missing[0])
                assert rebuilt is not None
                self._b[:], self._c[:] = rebuilt
                self._ctrl[_U] = epoch
                self._ctrl[_B] = epoch
            else:
                self.encoder.recover(
                    np.array(self._b, copy=True),
                    np.array(self._c, copy=True),
                    missing[0],
                )
        self.local = self.layout.unpack_into(self._b, self._arrays)
        self._charge_copy(self._b.nbytes)
        self._ctrl[_R] = epoch
        self.ctx.world.barrier()
        ctx.phase("restore.done")

        self.n_restores += 1
        return RestoreReport(
            epoch=epoch,
            source="checkpoint",
            reconstructed=tuple(missing),
            local=dict(self.local),
        )
