"""Double-parity (RAID-6 style) stripe layout over a group — the paper's
"more complex encoding methods, such as RAID-6 and Reed-Solomon, to
tolerate more node failures" (§2.1), worked out for the self-checkpoint
setting.

Layout
------
A group of ``N`` members (N >= 4) protects each member's padded buffer by
splitting it into ``N-2`` data stripes.  Conceptually there are ``N``
*slot rows*; in row ``r``:

* the **P parity** (plain XOR) lives on member ``r``,
* the **Q parity** (GF(2^8) Reed-Solomon) lives on member ``(r+1) mod N``,
* the remaining ``N-2`` members each contribute one data stripe, in
  member-index order.

Every member therefore hosts exactly one P stripe, one Q stripe, and
``N-2`` data stripes.  Losing any **two** members removes at most two
entries from each row — data and/or parity — which the (P, Q) pair decodes
(:class:`repro.ckpt.raid6.RSCodec` handles every erasure case).

The row/stripe mapping is pure combinatorics of ``N``, so it is computed
once per group size and cached as a :class:`GroupLayout` (the hot encode
path previously re-derived it with O(N^2) scans per stripe lookup).  The
per-group-size :class:`~repro.ckpt.raid6.RSCodec` is likewise cached —
construction is cheap but the encode/decode paths run once per row per
checkpoint, so nothing worth hoisting is left inside the loops.

The hot paths are zero-copy and matrix-form end-to-end: each member
buffer is reshaped **once** into an ``(n_stripes, stripe_size)`` view
(no bytes move — ``padded_size_rs`` guarantees the alignment), encode
writes every row's (P, Q) directly into two preallocated ``(N,
stripe_size)`` parity matrices via ``RSCodec.encode(out_p=, out_q=)``,
and reconstruction decodes straight through stripe views of the rebuilt
member buffers via ``RSCodec.decode(out=)``.  The returned parity
stripes are row views of the shared matrices; callers that persist them
(:meth:`repro.ckpt.self_rs.SelfCheckpointRS._pack_parity`) copy into
their own storage.  The underlying GF(2^8) kernels are selectable via
``REPRO_KERNEL_BACKEND`` (see :mod:`repro.ckpt.kernels`).

Space
-----
Checksum storage per member is ``2m/(N-2)`` (one P + one Q stripe), so the
self-checkpoint totals become ``2M + 4M/(N-2)`` and the available fraction
``(N-2)/2N``.  Notably this equals the *single*-failure XOR scheme at group
size ``N/2`` — same memory, but any-2-of-N tolerance instead of 1-per-N/2:
the ablation benchmark quantifies the trade.

All functions operate on ``uint8`` buffers whose length is a multiple of
``8 * (N-2)`` (see :func:`padded_size_rs`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ckpt.raid6 import RSCodec


def padded_size_rs(nbytes: int, group_size: int) -> int:
    """Smallest size >= ``nbytes`` divisible into ``N-2`` word stripes."""
    if group_size < 4:
        raise ValueError("double-parity groups need >= 4 members")
    unit = 8 * (group_size - 2)
    return ((max(1, nbytes) + unit - 1) // unit) * unit


def checksum_size_rs(nbytes_padded: int, group_size: int) -> int:
    """Per-member checksum bytes: one P + one Q stripe = 2m/(N-2)."""
    n_stripes = group_size - 2
    if nbytes_padded % (8 * n_stripes):
        raise ValueError(f"{nbytes_padded} not stripe aligned")
    return 2 * (nbytes_padded // n_stripes)


@dataclass(frozen=True)
class GroupLayout:
    """Precomputed row/stripe combinatorics of one group size.

    ``rows[r]`` is ``(p_holder, q_holder, data_members)`` for slot row
    ``r``; ``stripe_of[(member, row)]`` maps a member's contribution to a
    row onto its local stripe index (inverse: ``row_of[(member, stripe)]``)
    and ``position_of[(member, row)]`` onto its codec position within the
    row.  All three replace the O(N^2) rescans the encode and reconstruct
    loops used to perform per stripe.
    """

    group_size: int
    rows: Tuple[Tuple[int, int, Tuple[int, ...]], ...]
    stripe_of: Dict[Tuple[int, int], int]
    row_of: Dict[Tuple[int, int], int]
    position_of: Dict[Tuple[int, int], int]


@lru_cache(maxsize=None)
def layout_for(group_size: int) -> GroupLayout:
    """The cached :class:`GroupLayout` for ``group_size`` members."""
    n = group_size
    if n < 4:
        raise ValueError("double-parity groups need >= 4 members")
    rows: List[Tuple[int, int, Tuple[int, ...]]] = []
    stripe_of: Dict[Tuple[int, int], int] = {}
    row_of: Dict[Tuple[int, int], int] = {}
    position_of: Dict[Tuple[int, int], int] = {}
    counts = [0] * n
    for row in range(n):
        p = row % n
        q = (row + 1) % n
        data = tuple(j for j in range(n) if j != p and j != q)
        rows.append((p, q, data))
        for pos, j in enumerate(data):
            stripe = counts[j]
            counts[j] += 1
            stripe_of[(j, row)] = stripe
            row_of[(j, stripe)] = row
            position_of[(j, row)] = pos
    return GroupLayout(
        group_size=n,
        rows=tuple(rows),
        stripe_of=stripe_of,
        row_of=row_of,
        position_of=position_of,
    )


@lru_cache(maxsize=None)
def codec_for(n_stripes: int) -> RSCodec:
    """One shared :class:`~repro.ckpt.raid6.RSCodec` per stripe count."""
    return RSCodec(n_stripes)


def row_roles(row: int, group_size: int) -> Tuple[int, int, List[int]]:
    """(P holder, Q holder, data holders in member order) for a slot row."""
    p, q, data = layout_for(group_size).rows[row % group_size]
    return p, q, list(data)


def data_row_of(member: int, stripe: int, group_size: int) -> int:
    """The slot row in which ``member``'s data stripe ``stripe`` lives.

    Member ``j`` contributes data to every row where it is neither P nor Q
    holder — ``N-2`` rows; this maps local stripe index to row index.
    """
    row = layout_for(group_size).row_of.get((member, stripe))
    if row is None:
        raise ValueError(
            f"member {member} has only {group_size - 2} data stripes"
        )
    return row


def _stripe(buf: np.ndarray, idx: int, n_stripes: int) -> np.ndarray:
    """Zero-copy view of data stripe ``idx`` of ``buf``."""
    size = len(buf) // n_stripes
    return buf[idx * size : (idx + 1) * size]


def _stripe_matrix(buf: np.ndarray, n_stripes: int) -> np.ndarray:
    """One zero-copy ``(n_stripes, stripe_size)`` view of a member buffer:
    row ``i`` is data stripe ``i``.  Replaces ``n_stripes`` separate
    :func:`_stripe` slices on the hot paths."""
    return buf.reshape(n_stripes, len(buf) // n_stripes)


def build_parity(
    buffers: Sequence[np.ndarray], group_size: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Compute (P stripe, Q stripe) hosted by each member.

    ``buffers[j]`` is member ``j``'s padded uint8 buffer.  Member ``j``
    hosts P of row ``j`` and Q of row ``j-1 mod N``.  The returned
    stripes are row views of two parity matrices allocated here — the
    only allocations this function makes.
    """
    n = group_size
    if len(buffers) != n:
        raise ValueError(f"need {n} buffers, got {len(buffers)}")
    size = len(buffers[0])
    if any(len(b) != size or b.dtype != np.uint8 for b in buffers):
        raise ValueError("buffers must be equal-length uint8")
    layout = layout_for(n)
    n_stripes = n - 2
    codec = codec_for(n_stripes)
    stripe_size = size // n_stripes

    mats = [_stripe_matrix(b, n_stripes) for b in buffers]
    pmat = np.empty((n, stripe_size), dtype=np.uint8)
    qmat = np.empty((n, stripe_size), dtype=np.uint8)
    for row in range(n):
        _, _, data_members = layout.rows[row]
        contributions = [
            mats[j][layout.stripe_of[(j, row)]] for j in data_members
        ]
        codec.encode(contributions, out_p=pmat[row], out_q=qmat[row])

    return [(pmat[member], qmat[(member - 1) % n]) for member in range(n)]


def _stripe_index_of(member: int, row: int, group_size: int) -> int:
    """Inverse of :func:`data_row_of`: the local stripe index of
    ``member``'s contribution to ``row``."""
    stripe = layout_for(group_size).stripe_of.get((member, row))
    if stripe is None:
        raise ValueError(f"member {member} holds no data in row {row}")
    return stripe


def reconstruct_rs(
    survivors: Dict[int, np.ndarray],
    survivor_parity: Dict[int, Tuple[np.ndarray, np.ndarray]],
    missing: Sequence[int],
    group_size: int,
) -> Dict[int, Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]]:
    """Rebuild up to two lost members' buffers and parity stripes.

    Parameters
    ----------
    survivors:
        ``{member: buffer}`` for the healthy members.
    survivor_parity:
        ``{member: (P stripe, Q stripe)}`` for the same members.
    missing:
        One or two lost member indices.

    Returns
    -------
    ``{member: (buffer, (P, Q))}`` for each missing member.
    """
    n = group_size
    missing = sorted(set(missing))
    if not 1 <= len(missing) <= 2:
        raise ValueError("double-parity recovery handles 1 or 2 losses")
    expect = set(range(n)) - set(missing)
    if set(survivors) != expect or set(survivor_parity) != expect:
        raise ValueError("need buffers+parity from exactly the survivors")
    size = len(next(iter(survivors.values())))
    layout = layout_for(n)
    n_stripes = n - 2
    stripe_size = size // n_stripes
    codec = codec_for(n_stripes)

    rebuilt_mats = {
        m: np.empty((n_stripes, stripe_size), dtype=np.uint8) for m in missing
    }
    surv_mats = {j: _stripe_matrix(b, n_stripes) for j, b in survivors.items()}
    rebuilt_p: Dict[int, np.ndarray] = {}
    rebuilt_q: Dict[int, np.ndarray] = {}
    # scratch stripes for the parity halves re-encode must produce but a
    # survivor still holds (encode always computes the (P, Q) pair)
    p_scratch = np.empty(stripe_size, dtype=np.uint8)
    q_scratch = np.empty(stripe_size, dtype=np.uint8)

    for row in range(n):
        p_holder, q_holder, data_members = layout.rows[row]
        p = (
            survivor_parity[p_holder][0]
            if p_holder not in missing
            else None
        )
        q = (
            survivor_parity[q_holder][1]
            if q_holder not in missing
            else None
        )
        present: Dict[int, np.ndarray] = {}
        lost_views: Dict[int, np.ndarray] = {}  # codec position -> out stripe
        for pos, j in enumerate(data_members):
            if j in missing:
                lost_views[pos] = rebuilt_mats[j][layout.stripe_of[(j, row)]]
            else:
                present[pos] = surv_mats[j][layout.stripe_of[(j, row)]]
        # decode writes straight through the rebuilt members' stripe views
        decoded = codec.decode(present, p, q, out=lost_views)
        # recompute lost parity stripes from the (now complete) row data
        if p is None or q is None:
            full = [
                decoded[pos] if pos in decoded else present[pos]
                for pos in range(n_stripes)
            ]
            if p is None:
                out_p = rebuilt_p.setdefault(
                    p_holder, np.empty(stripe_size, dtype=np.uint8)
                )
            else:
                out_p = p_scratch
            if q is None:
                out_q = rebuilt_q.setdefault(
                    q_holder, np.empty(stripe_size, dtype=np.uint8)
                )
            else:
                out_q = q_scratch
            codec.encode(full, out_p=out_p, out_q=out_q)

    out: Dict[int, Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]] = {}
    for m in missing:
        # member m hosts P of row m and Q of row m-1, and both rows saw
        # that parity as lost, so the row loop always rebuilt the pair
        assert m in rebuilt_p and m in rebuilt_q, (
            f"row loop failed to rebuild member {m}'s parity stripes"
        )
        out[m] = (rebuilt_mats[m].reshape(-1), (rebuilt_p[m], rebuilt_q[m]))
    return out


def verify_group_rs(
    buffers: Sequence[np.ndarray],
    parity: Sequence[Tuple[np.ndarray, np.ndarray]],
    group_size: int,
) -> bool:
    """True when the (P, Q) stripes are consistent with the buffers.

    Checks row by row and returns ``False`` at the first mismatching
    stripe instead of materializing every fresh parity pair first — a
    corrupted group is detected after one row's worth of encoding.
    """
    n = group_size
    if len(buffers) != n or len(parity) != n:
        raise ValueError(f"need {n} buffers and parity pairs")
    layout = layout_for(n)
    n_stripes = n - 2
    codec = codec_for(n_stripes)
    stripe_size = len(buffers[0]) // n_stripes
    mats = [_stripe_matrix(b, n_stripes) for b in buffers]
    p_buf = np.empty(stripe_size, dtype=np.uint8)
    q_buf = np.empty(stripe_size, dtype=np.uint8)
    for row in range(n):
        p_holder, q_holder, data_members = layout.rows[row]
        contributions = [
            mats[j][layout.stripe_of[(j, row)]] for j in data_members
        ]
        codec.encode(contributions, out_p=p_buf, out_q=q_buf)
        if not np.array_equal(p_buf, parity[p_holder][0]):
            return False
        if not np.array_equal(q_buf, parity[q_holder][1]):
            return False
    return True
