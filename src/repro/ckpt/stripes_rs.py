"""Double-parity (RAID-6 style) stripe layout over a group — the paper's
"more complex encoding methods, such as RAID-6 and Reed-Solomon, to
tolerate more node failures" (§2.1), worked out for the self-checkpoint
setting.

Layout
------
A group of ``N`` members (N >= 4) protects each member's padded buffer by
splitting it into ``N-2`` data stripes.  Conceptually there are ``N``
*slot rows*; in row ``r``:

* the **P parity** (plain XOR) lives on member ``r``,
* the **Q parity** (GF(2^8) Reed-Solomon) lives on member ``(r+1) mod N``,
* the remaining ``N-2`` members each contribute one data stripe, in
  member-index order.

Every member therefore hosts exactly one P stripe, one Q stripe, and
``N-2`` data stripes.  Losing any **two** members removes at most two
entries from each row — data and/or parity — which the (P, Q) pair decodes
(:class:`repro.ckpt.raid6.RSCodec` handles every erasure case).

The row/stripe mapping is pure combinatorics of ``N``, so it is computed
once per group size and cached as a :class:`GroupLayout` (the hot encode
path previously re-derived it with O(N^2) scans per stripe lookup).  The
per-group-size :class:`~repro.ckpt.raid6.RSCodec` is likewise cached —
construction is cheap but the encode/decode paths run once per row per
checkpoint, so nothing worth hoisting is left inside the loops.  Stripe
access (:func:`_stripe`) is a zero-copy numpy view end-to-end: encode
reads views of the member buffers and reconstruction writes through views
of the rebuilt ones.

Space
-----
Checksum storage per member is ``2m/(N-2)`` (one P + one Q stripe), so the
self-checkpoint totals become ``2M + 4M/(N-2)`` and the available fraction
``(N-2)/2N``.  Notably this equals the *single*-failure XOR scheme at group
size ``N/2`` — same memory, but any-2-of-N tolerance instead of 1-per-N/2:
the ablation benchmark quantifies the trade.

All functions operate on ``uint8`` buffers whose length is a multiple of
``8 * (N-2)`` (see :func:`padded_size_rs`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ckpt.raid6 import RSCodec


def padded_size_rs(nbytes: int, group_size: int) -> int:
    """Smallest size >= ``nbytes`` divisible into ``N-2`` word stripes."""
    if group_size < 4:
        raise ValueError("double-parity groups need >= 4 members")
    unit = 8 * (group_size - 2)
    return ((max(1, nbytes) + unit - 1) // unit) * unit


def checksum_size_rs(nbytes_padded: int, group_size: int) -> int:
    """Per-member checksum bytes: one P + one Q stripe = 2m/(N-2)."""
    n_stripes = group_size - 2
    if nbytes_padded % (8 * n_stripes):
        raise ValueError(f"{nbytes_padded} not stripe aligned")
    return 2 * (nbytes_padded // n_stripes)


@dataclass(frozen=True)
class GroupLayout:
    """Precomputed row/stripe combinatorics of one group size.

    ``rows[r]`` is ``(p_holder, q_holder, data_members)`` for slot row
    ``r``; ``stripe_of[(member, row)]`` maps a member's contribution to a
    row onto its local stripe index (inverse: ``row_of[(member, stripe)]``)
    and ``position_of[(member, row)]`` onto its codec position within the
    row.  All three replace the O(N^2) rescans the encode and reconstruct
    loops used to perform per stripe.
    """

    group_size: int
    rows: Tuple[Tuple[int, int, Tuple[int, ...]], ...]
    stripe_of: Dict[Tuple[int, int], int]
    row_of: Dict[Tuple[int, int], int]
    position_of: Dict[Tuple[int, int], int]


@lru_cache(maxsize=None)
def layout_for(group_size: int) -> GroupLayout:
    """The cached :class:`GroupLayout` for ``group_size`` members."""
    n = group_size
    if n < 4:
        raise ValueError("double-parity groups need >= 4 members")
    rows: List[Tuple[int, int, Tuple[int, ...]]] = []
    stripe_of: Dict[Tuple[int, int], int] = {}
    row_of: Dict[Tuple[int, int], int] = {}
    position_of: Dict[Tuple[int, int], int] = {}
    counts = [0] * n
    for row in range(n):
        p = row % n
        q = (row + 1) % n
        data = tuple(j for j in range(n) if j != p and j != q)
        rows.append((p, q, data))
        for pos, j in enumerate(data):
            stripe = counts[j]
            counts[j] += 1
            stripe_of[(j, row)] = stripe
            row_of[(j, stripe)] = row
            position_of[(j, row)] = pos
    return GroupLayout(
        group_size=n,
        rows=tuple(rows),
        stripe_of=stripe_of,
        row_of=row_of,
        position_of=position_of,
    )


@lru_cache(maxsize=None)
def codec_for(n_stripes: int) -> RSCodec:
    """One shared :class:`~repro.ckpt.raid6.RSCodec` per stripe count."""
    return RSCodec(n_stripes)


def row_roles(row: int, group_size: int) -> Tuple[int, int, List[int]]:
    """(P holder, Q holder, data holders in member order) for a slot row."""
    p, q, data = layout_for(group_size).rows[row % group_size]
    return p, q, list(data)


def data_row_of(member: int, stripe: int, group_size: int) -> int:
    """The slot row in which ``member``'s data stripe ``stripe`` lives.

    Member ``j`` contributes data to every row where it is neither P nor Q
    holder — ``N-2`` rows; this maps local stripe index to row index.
    """
    row = layout_for(group_size).row_of.get((member, stripe))
    if row is None:
        raise ValueError(
            f"member {member} has only {group_size - 2} data stripes"
        )
    return row


def _stripe(buf: np.ndarray, idx: int, n_stripes: int) -> np.ndarray:
    """Zero-copy view of data stripe ``idx`` of ``buf``."""
    size = len(buf) // n_stripes
    return buf[idx * size : (idx + 1) * size]


def build_parity(
    buffers: Sequence[np.ndarray], group_size: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Compute (P stripe, Q stripe) hosted by each member.

    ``buffers[j]`` is member ``j``'s padded uint8 buffer.  Member ``j``
    hosts P of row ``j`` and Q of row ``j-1 mod N``.
    """
    n = group_size
    if len(buffers) != n:
        raise ValueError(f"need {n} buffers, got {len(buffers)}")
    size = len(buffers[0])
    if any(len(b) != size or b.dtype != np.uint8 for b in buffers):
        raise ValueError("buffers must be equal-length uint8")
    layout = layout_for(n)
    n_stripes = n - 2
    codec = codec_for(n_stripes)

    row_p: Dict[int, np.ndarray] = {}
    row_q: Dict[int, np.ndarray] = {}
    for row in range(n):
        _, _, data_members = layout.rows[row]
        contributions = [
            _stripe(buffers[j], layout.stripe_of[(j, row)], n_stripes)
            for j in data_members
        ]
        p, q = codec.encode(contributions)
        row_p[row] = p
        row_q[row] = q

    out = []
    for member in range(n):
        out.append((row_p[member], row_q[(member - 1) % n]))
    return out


def _stripe_index_of(member: int, row: int, group_size: int) -> int:
    """Inverse of :func:`data_row_of`: the local stripe index of
    ``member``'s contribution to ``row``."""
    stripe = layout_for(group_size).stripe_of.get((member, row))
    if stripe is None:
        raise ValueError(f"member {member} holds no data in row {row}")
    return stripe


def reconstruct_rs(
    survivors: Dict[int, np.ndarray],
    survivor_parity: Dict[int, Tuple[np.ndarray, np.ndarray]],
    missing: Sequence[int],
    group_size: int,
) -> Dict[int, Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]]:
    """Rebuild up to two lost members' buffers and parity stripes.

    Parameters
    ----------
    survivors:
        ``{member: buffer}`` for the healthy members.
    survivor_parity:
        ``{member: (P stripe, Q stripe)}`` for the same members.
    missing:
        One or two lost member indices.

    Returns
    -------
    ``{member: (buffer, (P, Q))}`` for each missing member.
    """
    n = group_size
    missing = sorted(set(missing))
    if not 1 <= len(missing) <= 2:
        raise ValueError("double-parity recovery handles 1 or 2 losses")
    expect = set(range(n)) - set(missing)
    if set(survivors) != expect or set(survivor_parity) != expect:
        raise ValueError("need buffers+parity from exactly the survivors")
    size = len(next(iter(survivors.values())))
    layout = layout_for(n)
    n_stripes = n - 2
    stripe_size = size // n_stripes
    codec = codec_for(n_stripes)

    rebuilt_bufs = {m: np.zeros(size, dtype=np.uint8) for m in missing}
    rebuilt_p: Dict[int, np.ndarray] = {}
    rebuilt_q: Dict[int, np.ndarray] = {}

    for row in range(n):
        p_holder, q_holder, data_members = layout.rows[row]
        p = (
            survivor_parity[p_holder][0]
            if p_holder not in missing
            else None
        )
        q = (
            survivor_parity[q_holder][1]
            if q_holder not in missing
            else None
        )
        present: Dict[int, np.ndarray] = {}
        lost_positions: Dict[int, int] = {}  # codec position -> member
        for pos, j in enumerate(data_members):
            if j in missing:
                lost_positions[pos] = j
            else:
                present[pos] = _stripe(
                    survivors[j], layout.stripe_of[(j, row)], n_stripes
                )
        decoded = codec.decode(present, p, q)
        for pos, member in lost_positions.items():
            idx = layout.stripe_of[(member, row)]
            _stripe(rebuilt_bufs[member], idx, n_stripes)[:] = decoded[pos]
        # recompute lost parity stripes from the (now complete) row data
        if p is None or q is None:
            full = [
                decoded[pos] if pos in decoded else present[pos]
                for pos in range(n_stripes)
            ]
            new_p, new_q = codec.encode(full)
            if p is None:
                rebuilt_p[p_holder] = new_p
            if q is None:
                rebuilt_q[q_holder] = new_q

    out: Dict[int, Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]] = {}
    for m in missing:
        p_stripe = rebuilt_p.get(m, np.zeros(stripe_size, dtype=np.uint8))
        q_stripe = rebuilt_q.get(m, np.zeros(stripe_size, dtype=np.uint8))
        out[m] = (rebuilt_bufs[m], (p_stripe, q_stripe))
    return out


def verify_group_rs(
    buffers: Sequence[np.ndarray],
    parity: Sequence[Tuple[np.ndarray, np.ndarray]],
    group_size: int,
) -> bool:
    """True when the (P, Q) stripes are consistent with the buffers.

    Checks row by row and returns ``False`` at the first mismatching
    stripe instead of materializing every fresh parity pair first — a
    corrupted group is detected after one row's worth of encoding.
    """
    n = group_size
    if len(buffers) != n or len(parity) != n:
        raise ValueError(f"need {n} buffers and parity pairs")
    layout = layout_for(n)
    n_stripes = n - 2
    codec = codec_for(n_stripes)
    for row in range(n):
        p_holder, q_holder, data_members = layout.rows[row]
        contributions = [
            _stripe(buffers[j], layout.stripe_of[(j, row)], n_stripes)
            for j in data_members
        ]
        p, q = codec.encode(contributions)
        if not np.array_equal(p, parity[p_holder][0]):
            return False
        if not np.array_equal(q, parity[q_holder][1]):
            return False
    return True
