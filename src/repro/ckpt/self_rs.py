"""Self-checkpoint with double parity: tolerate TWO node losses per group.

The paper notes that "more complex encoding methods, such as RAID-6 and
Reed-Solomon, [can] tolerate more node failures" (§2.1).  This protocol is
that extension applied to self-checkpoint: the C and D segments each hold a
(P, Q) parity pair from :mod:`repro.ckpt.stripes_rs` instead of a single
XOR stripe, and recovery reconstructs up to two simultaneously lost
members.

Space: checksums are ``2M/(N-2)`` per member, so available memory is
``(N-2)/2N`` — identical to running the single-parity scheme at half the
group size, but with *any-2-of-N* tolerance instead of 1-per-subgroup.
The ``bench_ablations`` group-size bench quantifies the trade.
"""

from __future__ import annotations

import numpy as np

from repro.ckpt.encoding_rs import GroupEncoderRS
from repro.ckpt.self_ckpt import SelfCheckpoint


class SelfCheckpointRS(SelfCheckpoint):
    """Self-checkpoint over (P, Q) Reed-Solomon parity; 2 losses/group."""

    METHOD = "self-rs"
    MAX_LOSSES = 2

    def __init__(self, *args, **kwargs):
        kwargs.pop("op", None)  # the parity pair fixes the operators
        super().__init__(*args, **kwargs)
        if self.group.size < 4:
            raise ValueError("self-rs needs groups of >= 4 members")
        self.encoder = GroupEncoderRS(self.group)

    def _span_attrs(self) -> dict:
        attrs = super()._span_attrs()
        attrs["codec"] = "rs"
        attrs["max_losses"] = self.MAX_LOSSES
        return attrs

    # -- hooks ------------------------------------------------------------------
    def _do_encode(self, flat: np.ndarray):
        enc = self.encoder.encode(flat)
        return self._pack_parity(enc.parity), enc.seconds

    def _do_recover(self, flat, checksum, missing: list):
        parity = None if checksum is None else self._unpack_parity(checksum)
        out = self.encoder.recover(flat, parity, missing)
        if out is None:
            return None
        rebuilt_flat, rebuilt_parity = out
        return rebuilt_flat, self._pack_parity(rebuilt_parity)

    # -- parity pair <-> flat checksum segment -----------------------------------
    def _pack_parity(self, parity) -> np.ndarray:
        p, q = parity
        out = np.empty(p.nbytes + q.nbytes, dtype=np.uint8)
        out[: p.nbytes] = p
        out[p.nbytes :] = q
        return out

    def _unpack_parity(self, blob: np.ndarray):
        """Split a checksum segment into its (P, Q) halves as zero-copy
        views.  Callers that feed the pair into a collective alongside the
        live segments pass a copy of the blob (``try_restore``/``verify``
        already do), so the views never alias SHM state mid-rebuild."""
        half = len(blob) // 2
        return blob[:half], blob[half:]
