"""Application-facing checkpoint manager: groups + protocol in one object.

Ties together the pieces an application needs (paper §5): partition the
world into node-distinct encoding groups, split a group communicator, and
instantiate the chosen protocol.  SKT-HPL and the examples go through this.

Typical use inside a rank main::

    mgr = CheckpointManager(ctx, ctx.world, group_size=8, method="self")
    a = mgr.alloc("matrix", (rows, cols))
    mgr.commit()
    report = mgr.try_restore()
    start = report.local["iteration"] if report else 0
    for it in range(start, n_iters):
        ... mutate a ...
        if time_to_checkpoint(it):
            mgr.local["iteration"] = it + 1
            mgr.checkpoint()
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.ckpt.disk import BlockDevice, DiskCheckpoint, HDD, SSD
from repro.ckpt.double import DoubleCheckpoint
from repro.ckpt.buddy import BuddyCheckpoint
from repro.ckpt.grouping import GroupLayout, partition_groups
from repro.ckpt.incremental import IncrementalCheckpoint
from repro.ckpt.multilevel import MultiLevelCheckpoint
from repro.ckpt.protocol import CheckpointInfo, RestoreReport
from repro.ckpt.self_ckpt import SelfCheckpoint
from repro.ckpt.self_rs import SelfCheckpointRS
from repro.ckpt.single import SingleCheckpoint
from repro.sim.mpi import Communicator
from repro.sim.runtime import RankContext

METHODS = (
    "self",
    "self-rs",
    "single",
    "double",
    "buddy",
    "incremental",
    "disk-hdd",
    "disk-ssd",
    "multilevel",
)


class CheckpointManager:
    """Builds groups and the protocol; delegates the checkpoint surface."""

    def __init__(
        self,
        ctx: RankContext,
        world: Communicator,
        *,
        group_size: int = 8,
        method: str = "self",
        strategy: str = "stride",
        op: str = "xor",
        prefix: str = "ckpt",
        a2_capacity: int = 4096,
        device: Optional[BlockDevice] = None,
        flush_every: int = 10,
        page_bytes: int = 4096,
        undo_fraction: float = 1.0,
        topology=None,
        protocol_factory=None,
    ):
        if method not in METHODS and protocol_factory is None:
            raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
        self.ctx = ctx
        self.world = world
        self.method = method

        if method.startswith("disk"):
            self.group_layout: Optional[GroupLayout] = None
            self.group: Optional[Communicator] = None
            dev = device or (HDD if method == "disk-hdd" else SSD)
            self._impl = DiskCheckpoint(
                ctx, dev, prefix=prefix, a2_capacity=a2_capacity
            )
        else:
            self.group_layout = partition_groups(
                world.size,
                group_size,
                strategy=strategy,
                ranklist=ctx.job.ranklist,
                topology=topology,
            )
            me = world.rank
            gid = self.group_layout.group_of(me)
            grank = self.group_layout.group_rank_of(me)
            self.group = world.split(color=gid, key=grank)
            kwargs = dict(op=op, prefix=f"{prefix}.g{gid}", a2_capacity=a2_capacity)
            if protocol_factory is not None:
                # escape hatch for harnesses (e.g. repro.chaos regression
                # tests) that must run a custom — even deliberately broken —
                # protocol variant through the standard grouping machinery
                self._impl = protocol_factory(ctx, self.group, **kwargs)
            elif method == "self":
                self._impl = SelfCheckpoint(ctx, self.group, **kwargs)
            elif method == "self-rs":
                self._impl = SelfCheckpointRS(ctx, self.group, **kwargs)
            elif method == "single":
                self._impl = SingleCheckpoint(ctx, self.group, **kwargs)
            elif method == "double":
                self._impl = DoubleCheckpoint(ctx, self.group, **kwargs)
            elif method == "buddy":
                self._impl = BuddyCheckpoint(ctx, self.group, **kwargs)
            elif method == "incremental":
                self._impl = IncrementalCheckpoint(
                    ctx,
                    self.group,
                    page_bytes=page_bytes,
                    undo_fraction=undo_fraction,
                    **kwargs,
                )
            else:  # multilevel
                self._impl = MultiLevelCheckpoint(
                    ctx,
                    self.group,
                    device=device or HDD,
                    flush_every=flush_every,
                    op=op,
                    prefix=f"{prefix}.g{gid}",
                    a2_capacity=a2_capacity,
                )

    # -- delegated surface ---------------------------------------------------------
    def alloc(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        return self._impl.alloc(name, shape, dtype)

    def array(self, name: str) -> np.ndarray:
        return self._impl.array(name)

    def commit(self) -> None:
        self._impl.commit()

    def checkpoint(self) -> CheckpointInfo:
        return self._impl.checkpoint()

    def try_restore(self) -> Optional[RestoreReport]:
        return self._impl.try_restore()

    @property
    def local(self) -> Dict[str, Any]:
        return self._impl.local

    @local.setter
    def local(self, value: Dict[str, Any]) -> None:
        self._impl.local = value

    @property
    def overhead_bytes(self) -> int:
        return self._impl.overhead_bytes

    @property
    def impl(self):
        """The underlying protocol object (for stats inspection)."""
        return self._impl
