"""Flat serialization of protected state (A1 arrays + A2 local variables).

Every checkpoint protocol reasons about one *flat buffer* per rank: the
concatenated bytes of the registered workspace arrays (the paper's A1)
followed by a fixed-capacity area holding the pickled local-variable dict
(the paper's A2 — "loop iterators or other scalar variables", §3.1), then
zero padding up to the group's agreed stripe-aligned size.

Layout::

    [array 0 bytes][array 1 bytes]...[u64 a2_len][a2 pickle][zeros.....]

The fixed A2 capacity mirrors the paper's "small second-buffer (B2)
allocated for simplicity"; overflowing it raises, pointing the user at the
``a2_capacity`` knob.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np


@dataclass
class _Slot:
    name: str
    shape: Tuple[int, ...]
    dtype: np.dtype
    offset: int
    nbytes: int


class StateLayout:
    """Describes how named arrays and the A2 dict map into a flat buffer.

    Register arrays with :meth:`add`, then :meth:`freeze`; afterwards
    :meth:`pack`/:meth:`unpack_into` convert between live arrays and flat
    ``uint8`` buffers of length :attr:`raw_size` (or longer — padding is
    ignored on unpack).
    """

    def __init__(self, a2_capacity: int = 4096):
        if a2_capacity < 64:
            raise ValueError("a2_capacity must be >= 64")
        self.a2_capacity = a2_capacity
        self._slots: List[_Slot] = []
        self._frozen = False
        self._arrays_size = 0

    def add(self, name: str, shape, dtype) -> None:
        """Register one workspace array before freezing."""
        if self._frozen:
            raise RuntimeError("layout already frozen")
        if any(s.name == name for s in self._slots):
            raise ValueError(f"duplicate array name {name!r}")
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dt.itemsize
        self._slots.append(
            _Slot(name=name, shape=shape, dtype=dt, offset=self._arrays_size, nbytes=nbytes)
        )
        self._arrays_size += nbytes

    def freeze(self) -> None:
        self._frozen = True

    @property
    def names(self) -> List[str]:
        return [s.name for s in self._slots]

    @property
    def raw_size(self) -> int:
        """Bytes needed before stripe padding: arrays + A2 header + A2 area."""
        return self._arrays_size + 8 + self.a2_capacity

    def spec_of(self, name: str) -> Tuple[Tuple[int, ...], np.dtype]:
        for s in self._slots:
            if s.name == name:
                return s.shape, s.dtype
        raise KeyError(name)

    # -- pack / unpack -----------------------------------------------------------
    def _require_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError("freeze() the layout first")

    def pack_a2(self, local: Dict[str, Any]) -> np.ndarray:
        """Serialize the A2 dict into a ``uint8`` blob of fixed size
        ``8 + a2_capacity`` (length header + padded pickle)."""
        blob = pickle.dumps(dict(local), protocol=pickle.HIGHEST_PROTOCOL)
        if len(blob) > self.a2_capacity:
            raise ValueError(
                f"A2 state is {len(blob)}B, exceeds a2_capacity="
                f"{self.a2_capacity}B; raise a2_capacity or shrink local state"
            )
        out = np.zeros(8 + self.a2_capacity, dtype=np.uint8)
        # explicit little-endian length header: checkpoint images (and every
        # fingerprint derived from them) must be byte-stable across platforms
        out[:8] = np.frombuffer(np.uint64(len(blob)).astype("<u8").tobytes(), dtype=np.uint8)
        out[8 : 8 + len(blob)] = np.frombuffer(blob, dtype=np.uint8)
        return out

    def unpack_a2(self, blob: np.ndarray) -> Dict[str, Any]:
        n = int(np.frombuffer(blob[:8].tobytes(), dtype="<u8")[0])
        if n > self.a2_capacity:
            raise ValueError(f"corrupt A2 header: length {n}")
        return pickle.loads(blob[8 : 8 + n].tobytes())

    def pack(
        self,
        arrays: Dict[str, np.ndarray],
        local: Dict[str, Any],
        out: np.ndarray | None = None,
        total_size: int | None = None,
    ) -> np.ndarray:
        """Serialize arrays + local dict into a flat ``uint8`` buffer.

        ``total_size`` (>= :attr:`raw_size`) adds zero padding, used to meet
        the group's stripe-aligned size.
        """
        self._require_frozen()
        size = total_size or self.raw_size
        if size < self.raw_size:
            raise ValueError(f"total_size {size} < raw_size {self.raw_size}")
        if out is None:
            out = np.zeros(size, dtype=np.uint8)
        elif len(out) != size or out.dtype != np.uint8:
            raise ValueError("out buffer has wrong size/dtype")
        else:
            out[self.raw_size :] = 0
        for s in self._slots:
            a = arrays[s.name]
            if a.shape != s.shape or a.dtype != s.dtype:
                raise ValueError(
                    f"array {s.name!r} is {a.shape}/{a.dtype}, "
                    f"layout expects {s.shape}/{s.dtype}"
                )
            out[s.offset : s.offset + s.nbytes] = np.ascontiguousarray(a).view(
                np.uint8
            ).reshape(-1)
        out[self._arrays_size : self.raw_size] = self.pack_a2(local)
        return out

    def unpack_into(
        self, flat: np.ndarray, arrays: Dict[str, np.ndarray]
    ) -> Dict[str, Any]:
        """Write array contents from ``flat`` into the given live arrays
        (in place) and return the A2 dict."""
        self._require_frozen()
        if len(flat) < self.raw_size:
            raise ValueError(f"flat buffer too small: {len(flat)} < {self.raw_size}")
        for s in self._slots:
            dst = arrays[s.name]
            if dst.shape != s.shape or dst.dtype != s.dtype:
                raise ValueError(f"array {s.name!r} mismatch on unpack")
            if not dst.flags.c_contiguous:
                raise ValueError(
                    f"array {s.name!r} must be C-contiguous for in-place restore"
                )
            raw = flat[s.offset : s.offset + s.nbytes]
            dst.reshape(-1).view(np.uint8)[:] = raw
        return self.unpack_a2(flat[self._arrays_size : self.raw_size])
