"""Stripe layout and checksum arithmetic for group encoding (paper §2.1).

A group of ``N`` processes protects each member's ``m``-byte buffer with a
RAID-5-like layout (paper Fig. 1): each process splits its buffer into
``N-1`` equal stripes and additionally hosts **one checksum stripe**.
Conceptually every process owns a row of ``N`` slots; slot ``i`` of process
``i`` is its checksum slot, and its data stripes fill the remaining slots in
order.  Checksum ``i`` combines slot ``i`` of every *other* process:

    X_S = X_1 (+) X_2 (+) ... (+) X_{N-1}            (paper Eq. 1)

where ``(+)`` is either bitwise XOR over 64-bit words (``MPI_BXOR``) or
numeric addition over doubles (``MPI_SUM``); both are supported, XOR being
the default as in the paper (§2.2).

Losing one process loses its ``N-1`` data stripes and one checksum stripe;
every lost data stripe sits in a distinct slot whose checksum survives on a
distinct healthy process, so single-failure recovery is always possible.

All functions here are pure numpy — the communication side lives in
:mod:`repro.ckpt.encoding`.  Buffers must be ``uint8`` arrays whose length
is a multiple of ``8 * (N - 1)`` (see :func:`padded_size`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Supported combine operators.
OPS = ("xor", "sum")


def padded_size(nbytes: int, group_size: int) -> int:
    """Smallest buffer size >= ``nbytes`` divisible into ``group_size - 1``
    stripes of whole 64-bit words."""
    if group_size < 2:
        raise ValueError("group_size must be >= 2")
    unit = 8 * (group_size - 1)
    return ((max(1, nbytes) + unit - 1) // unit) * unit


def checksum_size(nbytes_padded: int, group_size: int) -> int:
    """Checksum stripe size: 1/(N-1) of the protected buffer (paper §3.1)."""
    n_stripes = group_size - 1
    if nbytes_padded % (8 * n_stripes):
        raise ValueError(f"{nbytes_padded} not a multiple of {8 * n_stripes}")
    return nbytes_padded // n_stripes


def slot_of_stripe(proc: int, stripe: int) -> int:
    """Slot index hosting data stripe ``stripe`` of process ``proc``.

    Process ``proc``'s checksum occupies slot ``proc``; its data stripes
    fill the remaining slots in increasing order.
    """
    return stripe if stripe < proc else stripe + 1


def stripe_in_slot(proc: int, slot: int) -> int:
    """Inverse of :func:`slot_of_stripe`; ``slot`` must differ from ``proc``."""
    if slot == proc:
        raise ValueError(f"slot {slot} is process {proc}'s checksum slot")
    return slot if slot < proc else slot - 1


def _views(buf: np.ndarray, op: str) -> np.ndarray:
    if buf.dtype != np.uint8:
        raise TypeError(f"expected uint8 buffer, got {buf.dtype}")
    if op == "xor":
        return buf.view(np.uint64)
    if op == "sum":
        return buf.view(np.float64)
    raise ValueError(f"unknown op {op!r}; choose from {OPS}")


def _stripe_view(buf: np.ndarray, stripe: int, n_stripes: int, op: str) -> np.ndarray:
    words = _views(buf, op)
    if len(words) % n_stripes:
        raise ValueError("buffer not divisible into stripes; pad first")
    L = len(words) // n_stripes
    return words[stripe * L : (stripe + 1) * L]


def build_checksums(
    buffers: Sequence[np.ndarray], op: str = "xor"
) -> List[np.ndarray]:
    """Compute all ``N`` checksum stripes for a group.

    Parameters
    ----------
    buffers:
        One padded ``uint8`` buffer per group member, all the same length.
    op:
        ``"xor"`` (bit-exact) or ``"sum"`` (numeric doubles).

    Returns
    -------
    list of ``uint8`` arrays; element ``i`` is the checksum stripe hosted by
    process ``i`` (combining slot ``i`` of every other process).
    """
    n = len(buffers)
    if n < 2:
        raise ValueError("need a group of >= 2")
    size = len(buffers[0])
    if any(len(b) != size for b in buffers):
        raise ValueError("group buffers must share one padded size")
    n_stripes = n - 1
    checksums: List[np.ndarray] = []
    for i in range(n):
        acc = None
        for j in range(n):
            if j == i:
                continue
            stripe = stripe_in_slot(j, i)
            v = _stripe_view(buffers[j], stripe, n_stripes, op)
            if acc is None:
                acc = v.copy()
            elif op == "xor":
                acc ^= v
            else:
                acc += v
        assert acc is not None
        checksums.append(acc.view(np.uint8).copy())
    return checksums


def reconstruct(
    survivors: Dict[int, np.ndarray],
    survivor_checksums: Dict[int, np.ndarray],
    missing: int,
    group_size: int,
    op: str = "xor",
) -> Tuple[np.ndarray, np.ndarray]:
    """Rebuild the lost process's buffer and checksum stripe.

    Parameters
    ----------
    survivors:
        ``{proc: padded uint8 buffer}`` for every process except ``missing``.
    survivor_checksums:
        ``{proc: checksum stripe}`` for the same processes.
    missing:
        Index of the lost process.
    group_size:
        N.

    Returns
    -------
    ``(buffer, checksum)`` of the lost process.

    Raises
    ------
    ValueError if more than one process is missing — the RAID-5 layout
    tolerates a single loss per group (use :mod:`repro.ckpt.raid6` for two).
    """
    n = group_size
    expect = set(range(n)) - {missing}
    if set(survivors) != expect or set(survivor_checksums) != expect:
        raise ValueError(
            f"need buffers+checksums from exactly the {n - 1} survivors "
            f"{sorted(expect)}; got {sorted(survivors)} / {sorted(survivor_checksums)}"
        )
    size = len(next(iter(survivors.values())))
    n_stripes = n - 1
    out = np.zeros(size, dtype=np.uint8)

    # every data stripe of `missing` lives in some slot i != missing whose
    # checksum survives on process i
    for stripe in range(n_stripes):
        slot = slot_of_stripe(missing, stripe)
        acc = _views(survivor_checksums[slot].copy(), op)
        for j in expect:
            if j == slot:
                continue  # process `slot` hosts the checksum, no data in its own slot
            v = _stripe_view(survivors[j], stripe_in_slot(j, slot), n_stripes, op)
            if op == "xor":
                acc ^= v
            else:
                acc -= v
        dst = _stripe_view(out, stripe, n_stripes, op)
        dst[:] = acc

    # the lost checksum stripe (slot `missing`) is recomputed from survivors
    cs_acc = None
    for j in expect:
        v = _stripe_view(survivors[j], stripe_in_slot(j, missing), n_stripes, op)
        if cs_acc is None:
            cs_acc = v.copy()
        elif op == "xor":
            cs_acc ^= v
        else:
            cs_acc += v
    assert cs_acc is not None
    return out, cs_acc.view(np.uint8).copy()


def verify_group(
    buffers: Sequence[np.ndarray],
    checksums: Sequence[np.ndarray],
    op: str = "xor",
) -> bool:
    """True when ``checksums`` are consistent with ``buffers``.

    For the ``sum`` operator, float checksums are compared to within a few
    ulps of accumulated rounding.
    """
    fresh = build_checksums(buffers, op)
    if op == "xor":
        return all(np.array_equal(a, b) for a, b in zip(fresh, checksums))
    return all(
        np.allclose(
            a.view(np.float64), b.view(np.float64), rtol=1e-12, atol=1e-300
        )
        for a, b in zip(fresh, checksums)
    )
