"""Single in-memory checkpoint (paper Fig. 2) — the weak baseline.

One checkpoint ``B`` plus one checksum ``C`` per rank, both updated **in
place** at every checkpoint.  Cheapest in memory (Eq. 4: (N-1)/(2N-1)
available), but a failure while the update is in flight leaves (B, C)
inconsistent and the run is unrecoverable — the paper's CASE 2.

The control flags make the vulnerable window observable: ``c_epoch`` is
bumped *before* the update starts (declaring C dirty) and ``b_epoch``
*after* B lands.  At restore time the group is recoverable only when every
survivor shows ``c_epoch == b_epoch`` at one common epoch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ckpt.protocol import Checkpointer, CheckpointInfo, RestoreReport
from repro.sim.errors import UnrecoverableError

_C, _B = 1, 2


class SingleCheckpoint(Checkpointer):
    """Single-copy in-memory checkpoint: NOT fully fault tolerant."""

    N_FLAGS = 2
    METHOD = "single"

    # workspace lives in ordinary process memory (lost on restart)
    def _alloc_array(self, name: str, shape, dtype) -> np.ndarray:
        arr = np.zeros(shape, dtype=dtype)
        self.ctx.malloc(arr.nbytes)
        return arr

    def _create_segments(self) -> None:
        self._ctrl = self._make_ctrl()
        self._b = self.ctx.shm_create(
            self._seg("B"), self._padded, np.uint8, exist_ok=True
        ).array
        self._c = self.ctx.shm_create(
            self._seg("C"), self._cs_size, np.uint8, exist_ok=True
        ).array

    @property
    def overhead_bytes(self) -> int:
        return self._b.nbytes + self._c.nbytes + self._ctrl.nbytes

    def checkpoint(self) -> CheckpointInfo:
        self._require_committed()
        ctx = self.ctx
        e = max(int(self._ctrl[_C]), int(self._ctrl[_B])) + 1

        ctx.phase("ckpt.begin")
        self.ckpt_world_entry_barrier()
        # the in-place update starts: C is dirty from here on
        self._ctrl[_C] = e
        ctx.phase("ckpt.update")

        flat = self._pack_flat()
        enc = self.encoder.encode(flat)
        self._c[:] = enc.checksum
        ctx.phase("ckpt.update.mid")

        # the flush happens together system-wide (world barrier, keeping
        # all groups' epochs aligned); a failure now catches peers mid-update
        self.ctx.world.barrier()
        self._b[:] = flat
        flush_s = self._charge_copy(flat.nbytes)
        self._ctrl[_B] = e
        ctx.phase("ckpt.flush")
        self.ctx.world.barrier()
        ctx.phase("ckpt.done")

        self.n_checkpoints += 1
        self.total_encode_seconds += enc.seconds
        self.total_flush_seconds += flush_s
        return CheckpointInfo(
            epoch=e,
            protected_bytes=self._padded,
            checksum_bytes=self._cs_size,
            encode_seconds=enc.seconds,
            flush_seconds=flush_s,
        )

    def try_restore(self) -> Optional[RestoreReport]:
        self._require_committed()
        epochs = (
            (int(self._ctrl[_C]), int(self._ctrl[_B])) if self._had_state else (0, 0)
        )
        statuses = self._exchange_status(epochs, self._had_state)

        if not any(s.has_state for s in statuses):
            return None
        missing = self._group_missing(statuses)
        if len(missing) > 1:
            raise UnrecoverableError(f"group lost {len(missing)} members")

        cs = {s.epochs[0] for s in statuses if s.has_state}
        bs = {s.epochs[1] for s in statuses if s.has_state}
        if cs != bs or len(cs) != 1:
            raise UnrecoverableError(
                "single-checkpoint state is inconsistent (failure during "
                f"checkpoint update): c_epochs={sorted(cs)} b_epochs={sorted(bs)}"
            )
        epoch = cs.pop()
        if epoch == 0:
            self._reset_flags()
            return None

        ctx = self.ctx
        me = self.group.rank
        ctx.phase("restore.begin")
        if missing:
            lost = missing[0]
            if me == lost:
                rebuilt = self.encoder.recover(None, None, lost)
                assert rebuilt is not None
                self._b[:], self._c[:] = rebuilt
                self._ctrl[_C] = epoch
                self._ctrl[_B] = epoch
            else:
                self.encoder.recover(
                    np.array(self._b, copy=True), np.array(self._c, copy=True), lost
                )
        self.local = self.layout.unpack_into(self._b, self._arrays)
        self._charge_copy(self._b.nbytes)
        self.ctx.world.barrier()
        ctx.phase("restore.done")

        self.n_restores += 1
        return RestoreReport(
            epoch=epoch,
            source="checkpoint",
            reconstructed=tuple(missing),
            local=dict(self.local),
        )
