"""Batched GF(2^8) encode/decode kernels behind selectable backends.

The RAID-6 hot loops (:class:`repro.ckpt.raid6.RSCodec` and the stripe
paths in :mod:`repro.ckpt.stripes_rs`) funnel through three primitives:

``xor_fold(rows, out)``
    ``out = rows[0] ^ rows[1] ^ ...`` — the P parity.
``gpow_fold(rows, exps, out)``
    ``out = g^e0*rows[0] ^ g^e1*rows[1] ^ ...`` with strictly increasing
    exponents — the Q parity (``exps = 0..k-1``) and the decode syndromes
    (arbitrary surviving exponents).
``scale(c, v, out)``
    ``out = c*v`` for an arbitrary field constant — the final division in
    the 1-loss-via-Q and 2-loss solves.

Three interchangeable backends implement them, selected through the
``REPRO_KERNEL_BACKEND`` environment variable (``numpy`` | ``reference``
| ``numba`` | ``auto``); all produce byte-identical output, which the
equivalence suite in ``tests/ckpt/test_kernels.py`` enforces.

``numpy`` (default)
    Bitsliced Horner evaluation.  Eight bytes are packed per ``uint64``
    lane and the whole-vector multiply-by-``g`` is five SIMD-friendly
    ops (shift/mask/xor) instead of a 256-entry table gather:

        hi   = (v >> 7) & 0x0101...01     # the bytes about to overflow
        v    = ((v & 0x7f7f...7f) << 1) ^ hi * 0x1d

    Q then folds by Horner's rule from the highest exponent down —
    ``Q = D_0 ^ g*(D_1 ^ g*(D_2 ^ ...))`` — so the only per-row work is
    one xor plus ``gap`` cheap multiplies (the gap between consecutive
    exponents), never a per-constant gather.  Below
    ``bitslice_min_bytes`` (numpy per-call overhead dominates at
    protocol-size stripes) the fold drops back to the cached-table
    gathers, byte-identically.
``reference``
    The pre-batching formulation — one 256-entry table gather per row via
    :meth:`GF256.vec_mul_xor` — kept as the semantic oracle.
``numba``
    Optional compiled backend (lazily imported; never required).  Uses
    the ISA-L/SSSE3 low/high-nibble split-table decomposition
    ``c*v = lo_tbl[v & 0xF] ^ hi_tbl[v >> 4]`` — 16-entry tables per
    constant, the formulation pshufb-style hardware wants — fused into
    single-pass P+Q jitted loops.  Per-element table lookups are a
    pessimization under plain numpy (no pshufb equivalent), which is why
    this decomposition lives only behind the compiled backend.

Backend objects are stateless apart from cached tables/compiled
functions; :func:`get_kernels` memoizes the process-wide active backend
and :func:`use_backend` swaps it (tests, benchmarks).
"""

from __future__ import annotations

import os
from functools import lru_cache as _lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Environment variable naming the backend: numpy | reference | numba | auto.
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Stripe sizes below this use the table-gather fold even on the numpy
#: backend: the bitsliced pass is ~6 numpy calls per row and per-call
#: overhead swamps the arithmetic under ~4 KiB (measured crossover).
BITSLICE_MIN_BYTES = 4096

_MASK7 = np.uint64(0x7F7F7F7F7F7F7F7F)
_LSB = np.uint64(0x0101010101010101)
_POLY64 = np.uint64(0x1D)
_POLY8 = np.uint8(0x1D)
_ONE = np.uint64(1)
_SEVEN = np.uint64(7)


def _gf():
    # lazy: raid6 imports this module at its top, so the reverse import
    # must wait until call time
    from repro.ckpt.raid6 import _GF

    return _GF


class _Lanes:
    """A uint8 vector split into uint64 lanes plus a ragged uint8 tail.

    numpy permits the zero-copy ``view(np.uint64)`` at any byte offset as
    long as the viewed length is a multiple of 8, so the head covers the
    largest such prefix and the tail (< 8 bytes) runs the same recurrence
    in uint8.  Both forms compute exact field arithmetic, so head/tail
    splitting can never change a byte.
    """

    __slots__ = ("head", "tail", "_hs", "_ts")

    def __init__(self, v: np.ndarray) -> None:
        n8 = v.size & ~7
        head: Optional[np.ndarray] = None
        if n8:
            try:
                head = v[:n8].view(np.uint64)
            except ValueError:  # non-contiguous caller buffer: stay uint8
                n8 = 0
        self.head = head
        self.tail = v[n8:]
        self._hs = None if head is None else np.empty_like(head)
        self._ts = np.empty_like(self.tail)

    def gmul(self) -> None:
        """In-place multiply of every byte by the generator g = 0x02."""
        h, hs = self.head, self._hs
        if h is not None:
            assert hs is not None
            np.right_shift(h, _SEVEN, out=hs)
            hs &= _LSB
            h &= _MASK7
            h <<= _ONE
            hs *= _POLY64
            h ^= hs
        t, ts = self.tail, self._ts
        if t.size:
            np.right_shift(t, 7, out=ts)
            t <<= 1
            ts *= _POLY8
            t ^= ts


class KernelBackend:
    """Interface every kernel backend implements (byte-identical output)."""

    name = "abstract"

    def xor_fold(self, rows: Sequence[np.ndarray], out: np.ndarray) -> None:
        """``out = rows[0] ^ rows[1] ^ ...`` (P parity)."""
        np.copyto(out, rows[0])
        for r in rows[1:]:
            np.bitwise_xor(out, r, out=out)

    def gpow_fold(
        self, rows: Sequence[np.ndarray], exps: Sequence[int], out: np.ndarray
    ) -> None:
        """``out = XOR_i g^exps[i] * rows[i]`` (exps strictly increasing)."""
        raise NotImplementedError

    def encode_pq(
        self, rows: Sequence[np.ndarray], out_p: np.ndarray, out_q: np.ndarray
    ) -> None:
        """Fused P+Q: ``out_p = xor_fold(rows)``, ``out_q = gpow_fold(rows, 0..k-1)``."""
        self.xor_fold(rows, out_p)
        self.gpow_fold(rows, range(len(rows)), out_q)

    def scale(self, c: int, v: np.ndarray, out: np.ndarray) -> None:
        """``out = c * v`` for a field constant ``c`` (``out is v`` allowed)."""
        raise NotImplementedError


class ReferenceKernels(KernelBackend):
    """The pre-batching per-row table-gather loops — the semantic oracle."""

    name = "reference"

    def gpow_fold(
        self, rows: Sequence[np.ndarray], exps: Sequence[int], out: np.ndarray
    ) -> None:
        gf = _gf()
        out[:] = 0
        for r, e in zip(rows, exps):
            gf.vec_mul_xor(gf.pow_g(e), r, out)

    def scale(self, c: int, v: np.ndarray, out: np.ndarray) -> None:
        gf = _gf()
        if out is v:
            np.copyto(out, gf.vec_mul(c, v))
        else:
            gf.vec_mul(c, v, out=out)


class NumpyKernels(KernelBackend):
    """Bitsliced uint64 Horner folds (default; see module docstring)."""

    name = "numpy"

    def __init__(self, bitslice_min_bytes: int = BITSLICE_MIN_BYTES) -> None:
        self.bitslice_min_bytes = bitslice_min_bytes

    def gpow_fold(
        self, rows: Sequence[np.ndarray], exps: Sequence[int], out: np.ndarray
    ) -> None:
        if out.size < self.bitslice_min_bytes:
            ReferenceKernels.gpow_fold(self, rows, exps, out)  # type: ignore[arg-type]
            return
        exps = list(exps)
        # Horner from the highest exponent down: between consecutive rows
        # multiply by g once per exponent gap, then a final e_min lift.
        np.copyto(out, rows[-1])
        lanes = _Lanes(out)
        prev = exps[-1]
        for i in range(len(rows) - 2, -1, -1):
            for _ in range(prev - exps[i]):
                lanes.gmul()
            np.bitwise_xor(out, rows[i], out=out)
            prev = exps[i]
        for _ in range(prev):
            lanes.gmul()

    def scale(self, c: int, v: np.ndarray, out: np.ndarray) -> None:
        c = int(c)
        if c == 0:
            out[:] = 0
            return
        if c == 1:
            if out is not v:
                np.copyto(out, v)
            return
        if out.size < self.bitslice_min_bytes:
            ReferenceKernels.scale(self, c, v, out)  # type: ignore[arg-type]
            return
        # c*v = XOR of g^i*v over the set bits of c: walk a running
        # g^i*v and fold the selected powers (8 cheap passes beats the
        # 256-entry gather at MB scale)
        run = np.array(v, copy=True)
        lanes = _Lanes(run)
        first = True
        while c:
            if c & 1:
                if first:
                    np.copyto(out, run)
                    first = False
                else:
                    np.bitwise_xor(out, run, out=out)
            c >>= 1
            if c:
                lanes.gmul()


class NumbaKernels(KernelBackend):
    """Compiled split-table backend (lazy ``numba`` import; opt-in)."""

    name = "numba"

    def __init__(self) -> None:
        import numba  # confined here by the simlint kernel-backend rule

        self._njit = numba.njit
        self._tables: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._fns: Optional[Tuple[Callable, Callable, Callable]] = None

    def _tables_for(self, c: int) -> Tuple[np.ndarray, np.ndarray]:
        """The 16-entry low/high-nibble product tables for constant ``c``:
        ``c*v = lo[v & 0xF] ^ hi[v >> 4]`` (GF addition is xor and the
        nibbles partition the byte, so the split is exact)."""
        cached = self._tables.get(c)
        if cached is not None:
            return cached
        gf = _gf()
        lo = np.empty(16, dtype=np.uint8)
        hi = np.empty(16, dtype=np.uint8)
        for x in range(16):
            lo[x] = gf.mul(c, x)
            hi[x] = gf.mul(c, x << 4)
        lo.setflags(write=False)
        hi.setflags(write=False)
        self._tables[c] = (lo, hi)
        return lo, hi

    def _compiled(self) -> Tuple[Callable, Callable, Callable]:
        if self._fns is not None:
            return self._fns
        njit = self._njit

        def xor_into(out, v):  # pragma: no cover - jitted
            for i in range(out.shape[0]):
                out[i] ^= v[i]

        def scale_into(out, v, lo, hi, accumulate):  # pragma: no cover - jitted
            for i in range(out.shape[0]):
                x = v[i]
                y = lo[x & 0xF] ^ hi[x >> 4]
                if accumulate:
                    out[i] ^= y
                else:
                    out[i] = y

        def encode_row(p, q, v, lo, hi):  # pragma: no cover - jitted
            for i in range(p.shape[0]):
                x = v[i]
                p[i] ^= x
                q[i] ^= lo[x & 0xF] ^ hi[x >> 4]

        jit = njit(nogil=True, cache=False)
        self._fns = (jit(xor_into), jit(scale_into), jit(encode_row))
        return self._fns

    def xor_fold(self, rows: Sequence[np.ndarray], out: np.ndarray) -> None:
        xor_into, _, _ = self._compiled()
        np.copyto(out, rows[0])
        for r in rows[1:]:
            xor_into(out, r)

    def gpow_fold(
        self, rows: Sequence[np.ndarray], exps: Sequence[int], out: np.ndarray
    ) -> None:
        _, scale_into, _ = self._compiled()
        gf = _gf()
        for i, (r, e) in enumerate(zip(rows, exps)):
            lo, hi = self._tables_for(gf.pow_g(e))
            scale_into(out, r, lo, hi, i > 0)

    def encode_pq(
        self, rows: Sequence[np.ndarray], out_p: np.ndarray, out_q: np.ndarray
    ) -> None:
        _, scale_into, encode_row = self._compiled()
        gf = _gf()
        np.copyto(out_p, rows[0])
        lo, hi = self._tables_for(gf.pow_g(0))
        scale_into(out_q, rows[0], lo, hi, False)
        for j in range(1, len(rows)):
            lo, hi = self._tables_for(gf.pow_g(j))
            encode_row(out_p, out_q, rows[j], lo, hi)

    def scale(self, c: int, v: np.ndarray, out: np.ndarray) -> None:
        c = int(c)
        if c == 0:
            out[:] = 0
            return
        if c == 1:
            if out is not v:
                np.copyto(out, v)
            return
        _, scale_into, _ = self._compiled()
        lo, hi = self._tables_for(c)
        # same-index read-then-write, so out aliasing v is safe
        scale_into(out, v, lo, hi, False)


_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {
    "numpy": NumpyKernels,
    "reference": ReferenceKernels,
    "numba": NumbaKernels,
}

#: backend installed by :func:`use_backend`; the hot path only reads it
_override: Optional[KernelBackend] = None


def numba_available() -> bool:
    """True when the optional compiled backend can be imported."""
    try:
        import numba  # noqa: F401  (lazy probe; confined to this module)
    except Exception:
        return False
    return True


def available_backends() -> List[str]:
    """Backend names usable in this environment, default first."""
    names = ["numpy", "reference"]
    if numba_available():
        names.append("numba")
    return names


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Resolve an explicit name or the ``REPRO_KERNEL_BACKEND`` setting."""
    raw = name if name is not None else os.environ.get(BACKEND_ENV, "")
    raw = (raw or "numpy").strip().lower()
    if raw == "auto":
        return "numba" if numba_available() else "numpy"
    if raw not in _FACTORIES:
        raise ValueError(
            f"unknown GF(256) kernel backend {raw!r} (via {BACKEND_ENV}): "
            f"choose one of {', '.join(sorted(_FACTORIES))}, or 'auto'"
        )
    return raw


def make_backend(name: Optional[str] = None) -> KernelBackend:
    """Construct a backend by name (``None`` reads the environment)."""
    resolved = resolve_backend_name(name)
    try:
        return _FACTORIES[resolved]()
    except ImportError as exc:
        raise RuntimeError(
            f"kernel backend {resolved!r} selected via {BACKEND_ENV} but its "
            f"compiled dependency is not importable: {exc}"
        ) from exc


@_lru_cache(maxsize=None)
def _default_backend() -> KernelBackend:
    """The backend the environment selects, resolved once per process."""
    return make_backend(None)


def get_kernels() -> KernelBackend:
    """The process-wide active backend (resolved once, lazily).

    Pure read on the hot path: the environment-selected default is an
    ``lru_cache`` singleton and :func:`use_backend` overrides are only
    ever written outside the encode/decode kernels.
    """
    return _override if _override is not None else _default_backend()


def use_backend(name: Optional[str] = None) -> KernelBackend:
    """Install (and return) the active backend; ``None`` re-reads the
    environment.  For tests and benchmarks."""
    global _override
    _override = make_backend(name)
    return _override
