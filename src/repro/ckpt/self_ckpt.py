"""Self-checkpoint — the paper's contribution (sections 3.1-3.2, Figs. 4-5).

Memory layout per rank (all in SHM, names per Fig. 5):

===========  =====================================================  =========
segment      contents                                               size
===========  =====================================================  =========
``A1.*``     the workspace arrays themselves (allocated in SHM)     M
``B2``       copy of the small local/static state A2                ~KBs
``B``        the committed checkpoint (flat A1 ‖ A2)                M
``C``        checksum consistent with B                             M/(N-1)
``D``        checksum of the *live* workspace (A1 ‖ B2)             M/(N-1)
``CTRL``     [magic, epoch_F, epoch_B, epoch_R]                     32 B
===========  =====================================================  =========

Checkpoint workflow (Fig. 5)::

    1. copy A2 -> B2
    2. D <- group-checksum(A1 ‖ B2)          (stripe encode collective)
       BARRIER; epoch_F = e                  # flush license
    3. B <- (A1 ‖ B2);  C <- D;  epoch_B = e
       BARRIER; epoch_R = e                  # resume license

The two barriers establish the invariants the recovery decision needs:

* any rank flushing  ==>  every rank finished writing D at this epoch
  (so the **workspace path** A1+D is whole);
* any rank computing ==>  every rank finished flushing B, C
  (so the **checkpoint path** B+C is whole).

Recovery decision from the survivors' flags (max over survivors)::

    if max(epoch_F) > max(epoch_R):   failure hit the flush
        -> CASE 2: recover from workspace A1/B2 + checksum D
    elif max(epoch_B) >= 1:           failure hit compute or encode
        -> CASE 1: recover from checkpoint B + checksum C
    else:                             no checkpoint was ever completed
        -> fresh start

Either path reconstructs the replacement rank's data from the survivors'
buffers and checksum stripes, then rewrites a clean (B, C) pair so the
group returns to the steady state.  A single node loss per group is
therefore tolerated **at any time** — while using one checkpoint copy and
two small checksums instead of the double-checkpoint's two full copies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ckpt.protocol import Checkpointer, CheckpointInfo, RestoreReport
from repro.sim.errors import UnrecoverableError

_F, _B, _R = 1, 2, 3  # control-segment flag indices (0 is the magic)


class SelfCheckpoint(Checkpointer):
    """The self-checkpoint protocol (fully fault tolerant, 1 copy + 2
    checksums; available memory (N-1)/2N, paper Eq. 2)."""

    N_FLAGS = 3
    METHOD = "self"
    #: simultaneous member losses one group tolerates (1 for the XOR/SUM
    #: stripes; the Reed-Solomon subclass raises it to 2)
    MAX_LOSSES = 1

    def _span_attrs(self) -> dict:
        """Extra attributes stamped on this protocol's ``ckpt``/``restore``
        root spans (subclasses add their codec)."""
        return {"method": self.METHOD, "group": self.group.size}

    # -- encode/recover hooks (overridden by the double-parity subclass) ----
    def _do_encode(self, flat: np.ndarray):
        """Encode the group's buffers; returns (checksum bytes, seconds)."""
        enc = self.encoder.encode(flat)
        return enc.checksum, enc.seconds

    def _do_recover(self, flat, checksum, missing: list):
        """Group-reconstruct the missing members.  Survivors pass their
        buffer and checksum bytes; missing members pass None and receive
        their rebuilt ``(flat, checksum)``; survivors receive None."""
        return self.encoder.recover(flat, checksum, missing[0])

    # -- placement: the workspace lives in SHM ------------------------------------
    def _alloc_array(self, name: str, shape, dtype) -> np.ndarray:
        seg = self.ctx.shm_create(
            self._seg(f"A1.{name}"), shape, dtype, exist_ok=True
        )
        return seg.array

    def _create_segments(self) -> None:
        self._ctrl = self._make_ctrl()
        self._b = self.ctx.shm_create(
            self._seg("B"), self._padded, np.uint8, exist_ok=True
        ).array
        self._b2 = self.ctx.shm_create(
            self._seg("B2"), 8 + self.layout.a2_capacity, np.uint8, exist_ok=True
        ).array
        self._c = self.ctx.shm_create(
            self._seg("C"), self._cs_size, np.uint8, exist_ok=True
        ).array
        self._d = self.ctx.shm_create(
            self._seg("D"), self._cs_size, np.uint8, exist_ok=True
        ).array

    @property
    def overhead_bytes(self) -> int:
        """B + C + D + B2 (+ control); the workspace itself is not overhead
        — that is the whole point (Table 1)."""
        return (
            self._b.nbytes + self._c.nbytes + self._d.nbytes + self._b2.nbytes + self._ctrl.nbytes
        )

    # -- checkpoint ---------------------------------------------------------------------
    def checkpoint(self) -> CheckpointInfo:
        self._require_committed()
        ctx = self.ctx
        e = int(self._ctrl[_F]) + 1

        with ctx.span("ckpt", epoch=e, **self._span_attrs()):
            ctx.phase("ckpt.begin")
            # step 1: copy A2 into its SHM shadow B2
            with ctx.span("ckpt.copy_a2", nbytes=int(self._b2.nbytes)):
                self._b2[:] = self.layout.pack_a2(self.local)
                ctx.phase("ckpt.copy_a2")

            # step 2: encode the live workspace (A1 ‖ B2) into D
            with ctx.span("ckpt.encode", nbytes=int(self._padded)):
                flat = self._pack_flat()
                checksum, encode_s = self._do_encode(flat)
                self._d[:] = checksum
                ctx.phase("ckpt.encode")

            # flush license: a *world* barrier, so that "any rank flushing"
            # implies every group in the system holds a complete D — the
            # recovery decision is then globally consistent (all groups roll to
            # the same application iteration).  The barrier adds only latency
            # terms; the paper's claim that encode cost depends on the group
            # size alone still holds.
            self.ctx.world.barrier()
            self._ctrl[_F] = e
            ctx.phase("ckpt.flush_license")

            # step 3: flush workspace into the committed checkpoint, then
            # take the resume license — together the commit point
            with ctx.span("ckpt.commit", nbytes=int(flat.nbytes + self._d.nbytes)):
                self._b[:] = flat
                self._c[:] = self._d
                flush_s = self._charge_copy(flat.nbytes + self._d.nbytes)
                self._ctrl[_B] = e
                ctx.phase("ckpt.flush")

                # resume license: world-wide, for the same reason
                self.ctx.world.barrier()
                self._ctrl[_R] = e
                ctx.phase("ckpt.done")

        self.n_checkpoints += 1
        self.total_encode_seconds += encode_s
        self.total_flush_seconds += flush_s
        return CheckpointInfo(
            epoch=e,
            protected_bytes=self._padded,
            checksum_bytes=self._cs_size,
            encode_seconds=encode_s,
            flush_seconds=flush_s,
        )

    # -- restore -------------------------------------------------------------------------
    def try_restore(self) -> Optional[RestoreReport]:
        self._require_committed()
        epochs = (
            (int(self._ctrl[_F]), int(self._ctrl[_B]), int(self._ctrl[_R]))
            if self._had_state
            else (0, 0, 0)
        )
        statuses = self._exchange_status(epochs, self._had_state)

        if not any(s.has_state for s in statuses):
            # brand-new system OR a failure before the first checkpoint
            # ever committed: surviving nodes may still hold the stale
            # pre-failure workspace in SHM — blank it so every rank
            # initializes identically
            self._fresh_reset()
            return None
        missing = self._group_missing(statuses)
        if len(missing) > self.MAX_LOSSES:
            raise UnrecoverableError(
                f"group lost {len(missing)} members ({missing}); this "
                f"encoding tolerates {self.MAX_LOSSES}"
            )

        # world-wide flag maxima: every group takes the same branch
        e_f = self._world_max(statuses, 0)
        e_b = self._world_max(statuses, 1)
        e_r = self._world_max(statuses, 2)

        if e_f > e_r:
            return self._restore_workspace_path(e_f, missing)
        if e_b >= 1:
            return self._restore_checkpoint_path(e_b, missing)
        self._fresh_reset()
        return None

    def _fresh_reset(self) -> None:
        """Blank the SHM workspace and flags for a fresh start (no epoch
        ever committed anywhere, possibly with stale pre-failure data on
        surviving nodes)."""
        if self._had_state:
            for arr in self._arrays.values():
                arr[...] = 0
            self._b2[:] = 0
            self._reset_flags()

    def _restore_workspace_path(self, epoch: int, missing: list) -> RestoreReport:
        """CASE 2 (Fig. 4): the flush was interrupted; the live workspace
        A1/B2 plus the new checksum D are globally consistent."""
        ctx = self.ctx
        me = self.group.rank
        with ctx.span(
            "restore", epoch=epoch, source="workspace", missing=len(missing), **self._span_attrs()
        ):
            ctx.phase("restore.begin")

            with ctx.span("restore.rebuild"):
                if missing:
                    if me in missing:
                        rebuilt = self._do_recover(None, None, missing)
                        assert rebuilt is not None
                        flat, checksum = rebuilt
                        self.local = self.layout.unpack_into(flat, self._arrays)
                        self._b2[:] = flat[
                            self.layout.raw_size - self._b2.nbytes : self.layout.raw_size
                        ]
                        self._d[:] = checksum
                    else:
                        flat = self._flat_from_workspace()
                        self._do_recover(flat, np.array(self._d, copy=True), missing)
                        self.local = self.layout.unpack_a2(self._b2)
                else:
                    flat = self._flat_from_workspace()
                    self.local = self.layout.unpack_a2(self._b2)
                ctx.phase("restore.reconstruct")

            # complete the interrupted flush so the steady state holds again
            with ctx.span("restore.commit"):
                flat = self._flat_from_workspace() if missing and me in missing else flat
                self._b[:] = flat
                self._c[:] = self._d
                self._charge_copy(flat.nbytes + self._d.nbytes)
                self._ctrl[_F] = epoch
                self._ctrl[_B] = epoch
                self.ctx.world.barrier()
                self._ctrl[_R] = epoch
                ctx.phase("restore.done")

        self.n_restores += 1
        return RestoreReport(
            epoch=epoch,
            source="workspace",
            reconstructed=tuple(missing),
            local=dict(self.local),
        )

    def _restore_checkpoint_path(self, epoch: int, missing: list) -> RestoreReport:
        """CASE 1 (Fig. 4): compute or encode was interrupted; the committed
        checkpoint (B, C) is globally consistent."""
        ctx = self.ctx
        me = self.group.rank
        with ctx.span(
            "restore", epoch=epoch, source="checkpoint", missing=len(missing), **self._span_attrs()
        ):
            ctx.phase("restore.begin")

            with ctx.span("restore.rebuild"):
                if missing:
                    if me in missing:
                        rebuilt = self._do_recover(None, None, missing)
                        assert rebuilt is not None
                        b_new, c_new = rebuilt
                        self._b[:] = b_new
                        self._c[:] = c_new
                    else:
                        self._do_recover(
                            np.array(self._b, copy=True), np.array(self._c, copy=True), missing
                        )
                ctx.phase("restore.reconstruct")

            # roll the workspace back to the checkpoint
            with ctx.span("restore.commit"):
                self.local = self.layout.unpack_into(self._b, self._arrays)
                self._b2[:] = self._b[
                    self.layout.raw_size - self._b2.nbytes : self.layout.raw_size
                ]
                self._d[:] = self._c
                self._charge_copy(self._b.nbytes)
                self._ctrl[_F] = epoch
                self._ctrl[_B] = epoch
                self.ctx.world.barrier()
                self._ctrl[_R] = epoch
                ctx.phase("restore.done")

        self.n_restores += 1
        return RestoreReport(
            epoch=epoch,
            source="checkpoint",
            reconstructed=tuple(missing),
            local=dict(self.local),
        )

    # -- diagnostics -----------------------------------------------------------
    def verify(self) -> dict:
        """Collectively audit the group's redundancy (debug/ops tool).

        Returns ``{"checkpoint_ok": ..., "epochs": (F, B, R)}`` on every
        member: ``checkpoint_ok`` is True when the committed (B, C) pair is
        a consistent codeword across the whole group.  Safe to call at any
        quiescent point (all members must call together).
        """
        from repro.ckpt import stripes

        n = self.group.size
        op = self.encoder.op if hasattr(self.encoder, "op") else "xor"

        def compute(data):
            bufs = [data[r][0] for r in range(n)]
            cs = [data[r][1] for r in range(n)]
            if self.METHOD == "self-rs":
                from repro.ckpt import stripes_rs

                parity = [self._unpack_parity(c) for c in cs]
                ok = stripes_rs.verify_group_rs(bufs, parity, n)
            else:
                ok = stripes.verify_group(bufs, cs, op)
            return {r: ok for r in data}

        contribution = (np.array(self._b, copy=True), np.array(self._c, copy=True))
        ok = self.group.custom_collective(
            contribution,
            compute=compute,
            cost=lambda d: self.group.net.stripe_encode_time(self._padded, n),
        )
        return {
            "checkpoint_ok": bool(ok),
            "epochs": (
                int(self._ctrl[_F]),
                int(self._ctrl[_B]),
                int(self._ctrl[_R]),
            ),
        }

    def _flat_from_workspace(self) -> np.ndarray:
        """Flat view of the live workspace with A2 taken from B2 (the
        process's in-memory A2 did not survive the restart)."""
        out = np.zeros(self._padded, dtype=np.uint8)
        offset = 0
        for name in self.layout.names:
            a = self._arrays[name]
            out[offset : offset + a.nbytes] = np.ascontiguousarray(a).view(
                np.uint8
            ).reshape(-1)
            offset += a.nbytes
        out[offset : offset + self._b2.nbytes] = self._b2
        return out
