"""In-memory checkpoint protocols — the paper's core contribution.

Three protocols over the same group-encoded substrate:

* :class:`SingleCheckpoint` (Fig. 2): one checkpoint + one checksum; cheap
  but cannot survive a failure *during* checkpoint update.
* :class:`DoubleCheckpoint` (Fig. 3): two alternating checkpoint/checksum
  pairs; fully fault tolerant, but only ~1/3 of memory remains for the
  application (the state of the art the paper improves on).
* :class:`SelfCheckpoint` (Figs. 4-5): the paper's method — the workspace
  itself, kept in SHM, doubles as the in-flight checkpoint, so one copy plus
  two small checksums suffice; fully fault tolerant with ~(N-1)/2N of memory
  available.

Plus the comparison baselines: :class:`DiskCheckpoint` (BLCR-like full-image
to a block device) and :class:`MultiLevelCheckpoint` (SCR-like tiering).
"""

from repro.ckpt.stripes import (
    checksum_size,
    build_checksums,
    reconstruct,
    slot_of_stripe,
    stripe_in_slot,
)
from repro.ckpt.encoding import EncodeResult, GroupEncoder
from repro.ckpt.raid6 import GF256, RSCodec
from repro.ckpt.kernels import available_backends, get_kernels, use_backend
from repro.ckpt.grouping import GroupLayout, partition_groups, group_reliability
from repro.ckpt.memory_model import (
    available_fraction_double,
    available_fraction_self,
    available_fraction_self_rs,
    available_fraction_single,
    memory_breakdown_self,
    MemoryBreakdown,
)
from repro.ckpt.state import StateLayout
from repro.ckpt.protocol import (
    CheckpointInfo,
    Checkpointer,
    RestoreReport,
)
from repro.ckpt.single import SingleCheckpoint
from repro.ckpt.double import DoubleCheckpoint
from repro.ckpt.self_ckpt import SelfCheckpoint
from repro.ckpt.self_rs import SelfCheckpointRS
from repro.ckpt.encoding_rs import EncodeRSResult, GroupEncoderRS
from repro.ckpt.incremental import IncrementalCheckpoint
from repro.ckpt.buddy import BuddyCheckpoint
from repro.ckpt.disk import BlockDevice, DiskCheckpoint, HDD, PFS, SSD
from repro.ckpt.multilevel import MultiLevelCheckpoint
from repro.ckpt.manager import METHODS, CheckpointManager
from repro.ckpt.interval import (
    expected_runtime,
    optimal_interval_daly,
    optimal_interval_young,
)

__all__ = [
    "checksum_size",
    "build_checksums",
    "reconstruct",
    "slot_of_stripe",
    "stripe_in_slot",
    "EncodeResult",
    "GroupEncoder",
    "GF256",
    "RSCodec",
    "available_backends",
    "get_kernels",
    "use_backend",
    "GroupLayout",
    "partition_groups",
    "group_reliability",
    "available_fraction_single",
    "available_fraction_double",
    "available_fraction_self",
    "memory_breakdown_self",
    "MemoryBreakdown",
    "StateLayout",
    "CheckpointInfo",
    "Checkpointer",
    "RestoreReport",
    "SingleCheckpoint",
    "DoubleCheckpoint",
    "SelfCheckpoint",
    "SelfCheckpointRS",
    "IncrementalCheckpoint",
    "BuddyCheckpoint",
    "GroupEncoderRS",
    "EncodeRSResult",
    "available_fraction_self_rs",
    "BlockDevice",
    "DiskCheckpoint",
    "HDD",
    "PFS",
    "SSD",
    "MultiLevelCheckpoint",
    "CheckpointManager",
    "METHODS",
    "optimal_interval_young",
    "optimal_interval_daly",
    "expected_runtime",
]
