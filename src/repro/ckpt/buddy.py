"""Buddy double in-memory checkpointing (Zheng et al. [37, 38]).

The state of the art the paper measures against is FTC-Charm++'s buddy
scheme: ranks are paired; each keeps one checkpoint copy in its own memory
and mirrors a second copy into its buddy's memory.  Either copy alone
restores the pair after a single node loss — no encoding mathematics at
all, just replication.  The price is the paper's headline complaint:
two full copies leave only ~1/3 of memory for the application ("This
scheme can only use one third of the memory", §7).

Like our group-encoded :class:`~repro.ckpt.double.DoubleCheckpoint`, two
alternating slots make the update window safe; slot validity is judged
world-wide so all pairs restore the same epoch.

Memory per rank: 2 slots x (own copy + buddy's copy) = 4 checkpoint-sized
buffers?  No — each *slot* holds one local copy of our data and one mirror
of the buddy's, and the two slots alternate, so the steady state is
2 x (M_local + M_buddy) / ... with equal sizes: 2M per slot-pair member,
i.e. the same 1/3 availability as the encoded double scheme at group size
2 (Eq. 3 with N=2 gives (N-1)/(3N-1) = 1/5; replication does better than
encoding at N=2 because no checksum slot is needed: U = 1/3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ckpt.protocol import Checkpointer, CheckpointInfo, RestoreReport
from repro.sim.errors import UnrecoverableError

# control layout: [magic, c0, b0, c1, b1] (c = mirror sent, b = local done)
_C = (1, 3)
_B = (2, 4)


class BuddyCheckpoint(Checkpointer):
    """Pairwise replicated double checkpoint (FTC-Charm++ style).

    Requires groups of exactly 2 (use ``group_size=2`` in the manager).
    """

    N_FLAGS = 4
    METHOD = "buddy"

    def __init__(self, *args, **kwargs):
        kwargs.pop("op", None)  # replication needs no encoding operator
        super().__init__(*args, **kwargs)
        if self.group.size != 2:
            raise ValueError(
                f"buddy checkpointing pairs ranks; group size must be 2 "
                f"(got {self.group.size})"
            )

    def _alloc_array(self, name: str, shape, dtype) -> np.ndarray:
        arr = np.zeros(shape, dtype=dtype)
        self.ctx.malloc(arr.nbytes)
        return arr

    def _create_segments(self) -> None:
        self._ctrl = self._make_ctrl()
        # two alternating slots, each holding my copy and my buddy's mirror
        self._mine = [
            self.ctx.shm_create(
                self._seg(f"L{s}"), self._padded, np.uint8, exist_ok=True
            ).array
            for s in (0, 1)
        ]
        self._mirror = [
            self.ctx.shm_create(
                self._seg(f"M{s}"), self._padded, np.uint8, exist_ok=True
            ).array
            for s in (0, 1)
        ]

    @property
    def overhead_bytes(self) -> int:
        return (
            sum(b.nbytes for b in self._mine)
            + sum(b.nbytes for b in self._mirror)
            + self._ctrl.nbytes
        )

    @property
    def buddy(self) -> int:
        return 1 - self.group.rank

    def _epoch(self) -> int:
        return max(int(self._ctrl[i]) for i in (*_C, *_B))

    def checkpoint(self) -> CheckpointInfo:
        self._require_committed()
        ctx = self.ctx
        e = self._epoch() + 1
        slot = e % 2

        with ctx.span("ckpt", epoch=e, method=self.METHOD, slot=slot):
            ctx.phase("ckpt.begin")
            self.ckpt_world_entry_barrier()
            self._ctrl[_C[slot]] = e  # slot dirty
            ctx.phase("ckpt.update")

            # exchange full copies with the buddy (the replication "encode")
            with ctx.span("ckpt.exchange", buddy=self.buddy, nbytes=int(self._padded)):
                flat = self._pack_flat()
                theirs = self.group.sendrecv(
                    flat, dest=self.buddy, source=self.buddy, sendtag=e, recvtag=e
                )
                self._mirror[slot][:] = theirs
                ctx.phase("ckpt.update.mid")

            with ctx.span("ckpt.commit", nbytes=int(flat.nbytes)):
                self.ctx.world.barrier()
                self._mine[slot][:] = flat
                flush_s = self._charge_copy(2 * flat.nbytes)
                self._ctrl[_B[slot]] = e
                ctx.phase("ckpt.flush")
                self.ctx.world.barrier()
                ctx.phase("ckpt.done")

        self.n_checkpoints += 1
        # "encode" time here is the pairwise exchange, already charged by
        # sendrecv; report the nominal transfer time for stats symmetry
        exch = self.group.net.p2p_time(int(flat.nbytes), contended=True)
        self.total_encode_seconds += exch
        self.total_flush_seconds += flush_s
        return CheckpointInfo(
            epoch=e,
            protected_bytes=self._padded,
            checksum_bytes=self._padded,  # the mirror IS the redundancy
            encode_seconds=exch,
            flush_seconds=flush_s,
        )

    def try_restore(self) -> Optional[RestoreReport]:
        self._require_committed()
        epochs = (
            tuple(int(self._ctrl[i]) for i in (1, 2, 3, 4))
            if self._had_state
            else (0, 0, 0, 0)
        )
        statuses = self._exchange_status(epochs, self._had_state)
        if not any(s.has_state for s in statuses):
            return None
        missing = self._group_missing(statuses)
        if len(missing) > 1:
            raise UnrecoverableError(
                "both buddies lost — replication tolerates one per pair"
            )

        # slot validity judged world-wide, as in the encoded double scheme
        valid: dict = {}
        for slot in (0, 1):
            cs = {s.epochs[2 * slot] for s in statuses if s.has_state}
            bs = {s.epochs[2 * slot + 1] for s in statuses if s.has_state}
            if cs == bs and len(cs) == 1:
                valid[slot] = cs.pop()
        if not valid:
            raise UnrecoverableError("both buddy slots inconsistent")
        slot, epoch = max(valid.items(), key=lambda kv: kv[1])
        if epoch == 0:
            self._reset_flags()
            return None

        ctx = self.ctx
        me = self.group.rank
        with ctx.span("restore", epoch=epoch, source="checkpoint", missing=len(missing)):
            ctx.phase("restore.begin")
            # normalize flags: the interrupted slot's stale dirty marks would
            # otherwise make ranks disagree on the next epoch/slot (the
            # replacement starts with zeroed flags); wipe anything that is not
            # the restored slot's clean epoch
            other = 1 - slot
            if (
                self._ctrl[_C[other]] != self._ctrl[_B[other]]
                or int(self._ctrl[_C[other]]) >= epoch
            ):
                self._ctrl[_C[other]] = 0
                self._ctrl[_B[other]] = 0
            with ctx.span("restore.rebuild"):
                if missing:
                    lost = missing[0]
                    if me == lost:
                        # my copy is on my buddy: it sends both my data (its mirror)
                        # and its own data (so my mirror of IT is rebuilt too)
                        my_data, buddy_data = self.group.recv(self.buddy, tag=999)
                        self._mine[slot][:] = my_data
                        self._mirror[slot][:] = buddy_data
                        self._ctrl[_C[slot]] = epoch
                        self._ctrl[_B[slot]] = epoch
                    else:
                        self.group.send(
                            (
                                np.array(self._mirror[slot], copy=True),
                                np.array(self._mine[slot], copy=True),
                            ),
                            dest=lost,
                            tag=999,
                        )
            with ctx.span("restore.commit"):
                self.local = self.layout.unpack_into(self._mine[slot], self._arrays)
                self._charge_copy(self._mine[slot].nbytes)
                self.ctx.world.barrier()
                ctx.phase("restore.done")

        self.n_restores += 1
        return RestoreReport(
            epoch=epoch,
            source="checkpoint",
            reconstructed=tuple(missing),
            local=dict(self.local),
        )
