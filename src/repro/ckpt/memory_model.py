"""Analytic memory-usage model: paper Table 1 and Equations (2)-(4).

With group size ``N`` and per-process workspace ``M``:

* single checkpoint keeps B (M) + C (M/(N-1)):
      U_single = (N-1) / (2N-1)                      (Eq. 4)
* double checkpoint keeps two (B, C) pairs:
      U_double = (N-1) / (3N-1)                      (Eq. 3)
* self-checkpoint keeps B (M) + two checksums C, D (M/(N-1) each),
  with the workspace itself serving as the in-flight copy:
      U_self   = (N-1) / (2N)                        (Eq. 2)

``U`` is the fraction of total memory left for application data.  As N
grows, U_self approaches 1/2 while U_double approaches 1/3 — the "almost
50% more available memory" headline.
"""

from __future__ import annotations

from dataclasses import dataclass


def _check_n(group_size: int) -> None:
    if group_size < 2:
        raise ValueError("group_size must be >= 2")


def available_fraction_single(group_size: int) -> float:
    """Eq. (4): M / (M + M*N/(N-1))."""
    _check_n(group_size)
    n = group_size
    return (n - 1) / (2 * n - 1)


def available_fraction_double(group_size: int) -> float:
    """Eq. (3): M / (M + 2*M*N/(N-1))."""
    _check_n(group_size)
    n = group_size
    return (n - 1) / (3 * n - 1)


def available_fraction_self(group_size: int) -> float:
    """Eq. (2): M / (2*M*N/(N-1))."""
    _check_n(group_size)
    n = group_size
    return (n - 1) / (2 * n)


def available_fraction_self_rs(group_size: int) -> float:
    """The double-parity (RAID-6) extension: checksums are 2M/(N-2) each,
    total 2M + 4M/(N-2) = 2MN/(N-2), so U = (N-2)/2N.

    Equals :func:`available_fraction_self` at half the group size — same
    memory cost, but any-2-of-N tolerance instead of 1 per half-group.
    """
    if group_size < 4:
        raise ValueError("double-parity groups need >= 4 members")
    n = group_size
    return (n - 2) / (2 * n)


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-part memory of the self-checkpoint scheme (paper Table 1),
    in bytes for a workspace of ``workspace`` bytes."""

    workspace: int  # A1 + A2
    checkpoint: int  # B
    checksum_old: int  # C
    checksum_new: int  # D

    @property
    def total(self) -> int:
        return self.workspace + self.checkpoint + self.checksum_old + self.checksum_new

    @property
    def available_fraction(self) -> float:
        return self.workspace / self.total


def memory_breakdown_self(workspace_bytes: int, group_size: int) -> MemoryBreakdown:
    """Table 1 instantiated: A1+A2 = M, B = M, C = D = M/(N-1);
    total = 2MN/(N-1)."""
    _check_n(group_size)
    if workspace_bytes <= 0:
        raise ValueError("workspace must be positive")
    m = workspace_bytes
    cs = m // (group_size - 1)
    return MemoryBreakdown(
        workspace=m, checkpoint=m, checksum_old=cs, checksum_new=cs
    )


def workspace_for_budget(
    mem_budget_bytes: int, group_size: int, method: str
) -> int:
    """Largest per-process workspace fitting in ``mem_budget_bytes`` under
    each scheme's overhead — how Table 3's "Available Memory" column and the
    HPL problem sizes are derived."""
    _check_n(group_size)
    frac = {
        "single": available_fraction_single,
        "double": available_fraction_double,
        "self": available_fraction_self,
        "none": lambda n: 1.0,
        "disk": lambda n: 1.0,  # disk checkpoints keep no RAM copy
    }.get(method)
    if frac is None:
        raise ValueError(f"unknown method {method!r}")
    return int(mem_budget_bytes * frac(group_size))
