"""Optimal checkpoint interval selection (Young / Daly).

The paper checkpoints SKT-HPL "at the end of a certain iteration" with a
period chosen against the system MTBF (Table 3 uses one checkpoint per 10
minutes).  These classic first- and second-order optima let the benchmarks
ablate that choice:

* Young (1974):   T_opt = sqrt(2 * delta * MTBF)
* Daly (2006):    T_opt = sqrt(2 * delta * MTBF) * [1 + ...] - delta,
  a refinement accurate when delta / MTBF is not tiny.

``delta`` is the time to take one checkpoint.
"""

from __future__ import annotations

import math


def optimal_interval_young(delta_s: float, mtbf_s: float) -> float:
    """Young's first-order optimum checkpoint period (compute time between
    checkpoints, not counting the checkpoint itself)."""
    if delta_s <= 0 or mtbf_s <= 0:
        raise ValueError("delta and MTBF must be positive")
    return math.sqrt(2.0 * delta_s * mtbf_s)


def optimal_interval_daly(delta_s: float, mtbf_s: float) -> float:
    """Daly's higher-order optimum; falls back to MTBF when the checkpoint
    cost exceeds what the formula supports (delta >= 2*MTBF)."""
    if delta_s <= 0 or mtbf_s <= 0:
        raise ValueError("delta and MTBF must be positive")
    if delta_s >= 2.0 * mtbf_s:
        return mtbf_s
    x = math.sqrt(2.0 * delta_s * mtbf_s)
    correction = 1.0 + (1.0 / 3.0) * math.sqrt(delta_s / (2.0 * mtbf_s)) + (
        1.0 / 9.0
    ) * (delta_s / (2.0 * mtbf_s))
    return x * correction - delta_s


def expected_runtime(
    work_s: float, delta_s: float, interval_s: float, mtbf_s: float, restart_s: float
) -> float:
    """First-order expected completion time of ``work_s`` of computation
    with periodic checkpoints under exponential failures — used by the
    interval-ablation benchmark to rank candidate intervals."""
    if min(work_s, delta_s, interval_s, mtbf_s) <= 0:
        raise ValueError("work, delta, interval and MTBF must be positive")
    if restart_s < 0:
        raise ValueError("restart_s must be >= 0")
    n_ckpt = max(1.0, work_s / interval_s)
    base = work_s + n_ckpt * delta_s
    # expected lost work per failure: half an interval plus restart; a
    # failure can never lose more than the whole (shorter-than-interval)
    # run, so the term is clamped to half the total work
    failures = base / mtbf_s
    lost_s = min(interval_s, work_s) / 2.0
    return base + failures * (lost_s + delta_s + restart_s)
