"""Shard executor: the worker loop one process runs against the queue.

An executor needs only the queue path.  It claims a shard, replays every
unit that isn't journaled yet (so a re-issued shard skips the dead
executor's finished work), journals each outcome the moment it exists,
keeps its lease alive, and commits the shard when the last unit is
down.  It keeps claiming until the queue reports every shard done —
including shards re-issued from *other* executors' expired leases,
which is what lets a campaign finish even when all but one worker die.

Self-healing behaviours layered on the basic loop:

* **fencing** — every claim carries a fencing token
  (:class:`~repro.shard.queue.Lease`); journal writes and the shard
  commit present it and are *rejected* when the token was superseded.
  A zombie executor (stalled past its lease, then revived) therefore
  abandons the shard at the first rejected write instead of corrupting
  the re-issued claimant's work.
* **lease heartbeat** — a :class:`~repro.shard.health.LeaseHeartbeat`
  thread renews the lease every quarter-lease, so one unit running
  longer than ``lease_s`` is not re-issued mid-flight.
* **poison-unit quarantine** — a shard re-issued ``attempts_cap`` times
  without journal progress has its first unjournaled unit journaled as
  a synthesized ``gave-up`` outcome
  (:func:`~repro.shard.health.quarantine_outcome`) instead of being run
  again: one pathological replay can no longer crash-loop the campaign.
* **transient-failure retry** — every queue operation is wrapped in
  :func:`~repro.shard.health.retry_transient`, absorbing ``database is
  locked``-class ``sqlite3.OperationalError`` with jittered backoff.

Crash folding matches the serial engine exactly: a replay that raises
becomes a ``gave-up`` :func:`~repro.par.replay.crash_outcome` journal
row, never a lost campaign.

Fault injection for the torture harness lives in
:mod:`repro.shard.faults`: the declarative ``REPRO_SHARD_FAULTS`` spec
(SIGKILL-grade deaths, zombie stalls, poison units, injected
``OperationalError``, clock skew) plus the legacy
``REPRO_SHARD_DIE_AFTER``/``REPRO_SHARD_DIE_WORKER`` pair, which still
hard-exits (``os._exit``) after journaling K units — a real
SIGKILL-grade death: no commit, lease left dangling, WAL mid-flight.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.par.cache import MemoCache
from repro.par.replay import ReplayOutcome, ReplaySpec, crash_outcome, replay

from repro.shard.faults import (  # noqa: F401  (re-exported: test/CI surface)
    DIE_AFTER_ENV,
    DIE_EXIT_CODE,
    DIE_WORKER_ENV,
    POISON_EXIT_CODE,
    FaultPlan,
)
from repro.shard.health import (
    DEFAULT_ATTEMPTS_CAP,
    LeaseHeartbeat,
    quarantine_outcome,
    retry_transient,
)
from repro.shard.queue import Lease, ShardQueue


def _run_unit(spec: ReplaySpec, cache: Optional[MemoCache], key: str) -> ReplayOutcome:
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    try:
        outcome = replay(spec)
    except Exception as exc:  # fold, don't lose the campaign
        return crash_outcome(spec, exc)
    if cache is not None:
        cache.put(key, outcome)
    return outcome


def run_executor(
    queue_path: str,
    worker_index: int,
    *,
    lease_s: float = 60.0,
    cache_dir: Optional[str] = None,
    poll_s: float = 0.05,
    owner: Optional[str] = None,
    attempts_cap: int = DEFAULT_ATTEMPTS_CAP,
    heartbeat: bool = True,
) -> int:
    """Drain the queue at ``queue_path``; returns units this worker ran.

    Spawned by the driver as an independent process, but also callable
    inline (the tests drive single executors through crash/resume
    scenarios this way).  ``owner`` defaults to a per-process identity
    so lease rows name their claimant.  ``attempts_cap`` bounds how
    often a barren shard is re-issued before its first unjournaled unit
    is quarantined; ``heartbeat=False`` disables the renewal thread
    (inline tests that want deterministic lease expiry).
    """
    if owner is None:
        owner = f"exec{worker_index}.pid{os.getpid()}"
    faults = FaultPlan.from_env(worker_index)
    if faults.clock_offset_s:
        offset = faults.clock_offset_s
        clock = lambda: time.time() + offset  # noqa: E731
    else:
        clock = time.time
    cache = MemoCache(cache_dir) if cache_dir else None
    executed = 0

    def _q(fn):
        return retry_transient(fn, seed=owner)

    with ShardQueue(
        queue_path, clock=clock, fault_hook=faults.queue_hook
    ) as queue:
        while not _q(queue.all_done):
            lease = _q(lambda: queue.claim(owner, lease_s))
            if lease is None:
                # every remaining shard is live-leased elsewhere; linger
                # in case one of those leases expires
                time.sleep(poll_s)
                continue
            executed += _drain_shard(
                queue, queue_path, lease, lease_s,
                cache=cache, faults=faults, attempts_cap=attempts_cap,
                heartbeat=heartbeat, executed_before=executed, owner=owner,
            )
    return executed


def _drain_shard(
    queue: ShardQueue,
    queue_path: str,
    lease: Lease,
    lease_s: float,
    *,
    cache: Optional[MemoCache],
    faults: FaultPlan,
    attempts_cap: int,
    heartbeat: bool,
    executed_before: int,
    owner: str,
) -> int:
    """Run one claimed shard to its commit (or abandon it when fenced
    out); returns the number of units this call replayed."""

    def _q(fn):
        return retry_transient(fn, seed=owner)

    ran = 0
    hb = (
        LeaseHeartbeat(queue_path, lease, lease_s, clock=queue.clock).start()
        if heartbeat
        else None
    )
    try:
        if attempts_cap > 0 and lease.attempts >= attempts_cap:
            victim = _q(lambda: queue.first_unjournaled(lease.shard_id))
            if victim is not None:
                ord_, fingerprint = victim
                outcome = quarantine_outcome(
                    lease.shard_id, ord_, lease.attempts, attempts_cap
                )
                if not _q(
                    lambda: queue.record_quarantine(
                        ord_, fingerprint, outcome, lease
                    )
                ):
                    return ran  # fenced out — someone else owns the shard
        for ord_, fingerprint, spec in _q(
            lambda: queue.shard_units(lease.shard_id)
        ):
            if hb is not None and hb.lost:
                return ran  # lease was re-issued; stop touching the shard
            if _q(lambda: queue.has_result(ord_)):
                continue  # journaled by a previous (dead) claimant
            faults.check_poison(ord_)
            outcome = _run_unit(spec, cache, fingerprint)
            if not _q(lambda: queue.record(ord_, fingerprint, outcome, lease)):
                return ran  # zombie write rejected: abandon the shard
            ran += 1
            faults.check_kill(executed_before + ran)
            stall = faults.zombie_stall(executed_before + ran)
            if stall is not None:
                # a real SIGSTOP freezes the heartbeat thread with the
                # process, so the simulated zombie suspends it too: the
                # lease expires mid-stall, the shard is re-issued, and
                # every write after revival must be fence-rejected
                if hb is not None:
                    hb.stop()
                    hb = None
                faults.sleep(stall)
            if hb is None and not _q(lambda: queue.renew(lease, lease_s)):
                return ran
        _q(lambda: queue.commit_shard(lease))
    finally:
        if hb is not None:
            hb.stop()
    return ran
