"""Shard executor: the worker loop one process runs against the queue.

An executor needs only the queue path.  It claims a shard, replays every
unit that isn't journaled yet (so a re-issued shard skips the dead
executor's finished work), journals each outcome the moment it exists,
renews its lease between units, and commits the shard when the last unit
is down.  It keeps claiming until the queue reports every shard done —
including shards re-issued from *other* executors' expired leases, which
is what lets a campaign finish even when all but one worker die.

Crash folding matches the serial engine exactly: a replay that raises
becomes a ``gave-up`` :func:`~repro.par.replay.crash_outcome` journal
row, never a lost campaign.

Fault injection for the crash/resume tests lives here too: set
``REPRO_SHARD_DIE_AFTER=K`` and the executor whose index matches
``REPRO_SHARD_DIE_WORKER`` (default 0; ``all`` for every executor)
hard-exits (``os._exit``) after journaling K units — a real
SIGKILL-grade death: no commit, lease left dangling, WAL mid-flight.
Killing worker 0 exercises the lease re-issue path (survivors finish
the campaign); killing ``all`` leaves a partial journal the next
invocation resumes, deterministically reproducing a dead driver.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.par.cache import MemoCache
from repro.par.replay import ReplayOutcome, ReplaySpec, crash_outcome, replay

from repro.shard.queue import ShardQueue

#: env hooks for the kill-an-executor tests and the CI smoke job
DIE_AFTER_ENV = "REPRO_SHARD_DIE_AFTER"
DIE_WORKER_ENV = "REPRO_SHARD_DIE_WORKER"

#: ``os._exit`` code of a fault-injected death, so tests can tell a
#: simulated crash from a real one
DIE_EXIT_CODE = 86


def _die_after(worker_index: int) -> Optional[int]:
    raw = os.environ.get(DIE_AFTER_ENV)
    if raw is None:
        return None
    victim = os.environ.get(DIE_WORKER_ENV, "0")
    if victim != "all" and worker_index != int(victim):
        return None
    return int(raw)


def _run_unit(spec: ReplaySpec, cache: Optional[MemoCache], key: str) -> ReplayOutcome:
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    try:
        outcome = replay(spec)
    except Exception as exc:  # fold, don't lose the campaign
        return crash_outcome(spec, exc)
    if cache is not None:
        cache.put(key, outcome)
    return outcome


def run_executor(
    queue_path: str,
    worker_index: int,
    *,
    lease_s: float = 60.0,
    cache_dir: Optional[str] = None,
    poll_s: float = 0.05,
    owner: Optional[str] = None,
) -> int:
    """Drain the queue at ``queue_path``; returns units this worker ran.

    Spawned by the driver as an independent process, but also callable
    inline (the tests drive single executors through crash/resume
    scenarios this way).  ``owner`` defaults to a per-process identity
    so lease rows name their claimant.
    """
    if owner is None:
        owner = f"exec{worker_index}.pid{os.getpid()}"
    die_after = _die_after(worker_index)
    cache = MemoCache(cache_dir) if cache_dir else None
    executed = 0
    with ShardQueue(queue_path) as queue:
        while not queue.all_done():
            shard_id = queue.claim(owner, lease_s)
            if shard_id is None:
                # every remaining shard is live-leased elsewhere; linger
                # in case one of those leases expires
                time.sleep(poll_s)
                continue
            for ord_, fingerprint, spec in queue.shard_units(shard_id):
                if queue.has_result(ord_):
                    continue  # journaled by a previous (dead) claimant
                outcome = _run_unit(spec, cache, fingerprint)
                queue.record(ord_, fingerprint, outcome)
                queue.renew(shard_id, owner, lease_s)
                executed += 1
                if die_after is not None and executed >= die_after:
                    os._exit(DIE_EXIT_CODE)  # simulated executor crash
            queue.commit_shard(shard_id, owner)
    return executed
