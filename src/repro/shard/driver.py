"""Shard driver: plan → queue → executors → merge, crash-tolerant end to end.

``repro chaos --shards N`` lands here.  The driver freezes the campaign
into a plan, binds (or resumes) the SQLite queue under the ``--out``
directory, launches N independent executor processes against it, and
merges the journal into the serial engine's artifacts when every shard
is done.

Two failure modes, one answer:

* **an executor dies** — its lease expires and a surviving executor
  re-claims the shard, skipping the journaled units.  The campaign
  finishes in the same invocation, no operator action needed.
* **the driver dies** (or every executor does) — the queue file holds
  every journaled outcome.  Re-running with ``--resume DIR`` re-plans,
  verifies the plan fingerprint against the queue, and continues from
  the journal.  Replays are deterministic, so the resumed campaign's
  ``BENCH_chaos.json``, ``report.txt`` and store digests are
  byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.campaign import CampaignReport
from repro.chaos.schedules import RandomCampaignConfig, ScheduleResult

from repro.shard.executor import run_executor
from repro.shard.merge import merge_campaign
from repro.shard.planner import CampaignPlan, plan_campaign
from repro.shard.queue import ShardQueue, queue_path_for


class ShardCampaignError(RuntimeError):
    """The campaign could not be completed in this invocation; the queue
    remains resumable."""


def _spawn_executors(
    ctx: Any,
    n: int,
    queue_path: str,
    *,
    lease_s: float,
    cache_dir: Optional[str],
    poll_s: float,
) -> List[Any]:
    procs = []
    for i in range(n):
        p = ctx.Process(
            target=run_executor,
            args=(queue_path, i),
            kwargs={
                "lease_s": lease_s,
                "cache_dir": cache_dir,
                "poll_s": poll_s,
            },
            daemon=False,  # executors must outlive nothing, but be killable
        )
        p.start()
        procs.append(p)
    return procs


def run_sharded_campaign(
    scenarios: Sequence[Any],
    *,
    n_shards: int,
    out_dir: str,
    seed: int = 0,
    obs: str = "off",
    max_occurrences: Optional[int] = None,
    random_cfg: Optional[RandomCampaignConfig] = None,
    lease_s: float = 60.0,
    cache_dir: Optional[str] = None,
    executors: Optional[int] = None,
    poll_s: float = 0.05,
    progress: Any = None,
    mp_context: Optional[str] = None,
) -> Tuple[
    CampaignPlan,
    List[CampaignReport],
    Optional[List[ScheduleResult]],
    Dict[str, int],
]:
    """Run (or resume) one sharded campaign to completion and merge it.

    ``scenarios`` is one scenario per method, in method order — the same
    list the serial CLI builds.  The queue lives at
    ``queue_path_for(out_dir)``; when it already exists it is resumed
    (after the plan-fingerprint check) and only unjournaled units run.
    ``executors`` defaults to one process per shard, capped at
    ``n_shards``.  Returns ``(plan, matrices, schedules, stats)`` with
    ``matrices``/``schedules`` bit-for-bit what the serial engine
    produces.

    Raises :class:`ShardCampaignError` when every executor exits with
    shards still unfinished (e.g. all were fault-injected away) — the
    queue keeps the journal, so rerunning with ``--resume`` continues.
    """
    plan = plan_campaign(
        scenarios,
        n_shards=n_shards,
        seed=seed,
        obs=obs,
        max_occurrences=max_occurrences,
        random_cfg=random_cfg,
    )
    os.makedirs(out_dir, exist_ok=True)
    queue_path = queue_path_for(out_dir)
    ctx = multiprocessing.get_context(mp_context)
    with ShardQueue(queue_path) as queue:
        queue.populate(plan)  # fresh run or fingerprint-checked resume
        n_exec = executors if executors is not None else len(plan.shards)
        n_exec = max(1, min(n_exec, len(plan.shards)))
        if progress is not None:
            progress.start(plan.n_units, n_exec)
        if not queue.all_done():
            procs = _spawn_executors(
                ctx,
                n_exec,
                queue_path,
                lease_s=lease_s,
                cache_dir=cache_dir,
                poll_s=poll_s,
            )
            try:
                while any(p.is_alive() for p in procs):
                    if progress is not None:
                        stats = queue.progress()
                        progress.update(
                            stats["done_units"],
                            stats["total_units"],
                            0,
                            sum(1 for p in procs if p.is_alive()),
                        )
                    time.sleep(poll_s)
            finally:
                for p in procs:
                    p.join()
        stats = queue.progress()
        if not queue.all_done():
            raise ShardCampaignError(
                f"campaign incomplete: {stats['done_units']}/"
                f"{stats['total_units']} units journaled, "
                f"{stats['done_shards']}/{stats['total_shards']} shards "
                f"committed — every executor exited; resume with "
                f"--shards {n_shards} --resume {out_dir}"
            )
        outcomes = queue.outcomes()
    matrices, schedules = merge_campaign(plan, outcomes)
    if progress is not None:
        progress.finish(stats["done_units"], stats["total_units"], 0, n_exec)
    return plan, matrices, schedules, stats
