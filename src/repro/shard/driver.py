"""Shard driver: plan → queue → supervised executors → merge.

``repro chaos --shards N`` lands here.  The driver freezes the campaign
into a plan, binds (or resumes) the SQLite queue under the ``--out``
directory, launches N executor processes against it under an
:class:`~repro.shard.health.ExecutorSupervisor`, and merges the journal
into the serial engine's artifacts when every shard is done.

Failure modes, one answer each:

* **an executor dies** — its lease expires and a surviving executor
  re-claims the shard, skipping the journaled units; with ``--respawn
  N`` the supervisor also respawns the dead slot under exponential
  backoff, so the campaign keeps its full width.  The budget spent, the
  driver degrades to fewer workers; with *nothing* left alive it exits
  3 with a resume hint.
* **a unit kills every executor that runs it** — the poison-unit
  quarantine (``--attempts-cap``) journals it as a synthesized
  ``gave-up`` outcome after the cap'th barren re-issue; the campaign
  terminates instead of crash-looping.
* **the driver dies** — the queue file holds every journaled outcome.
  Re-running with ``--resume DIR`` re-plans, verifies the plan
  fingerprint against the queue, and continues from the journal.
* **the queue file is corrupted** (torn write, disk fault) — resume
  refuses to merge it (exit 2); ``--salvage`` copies every parseable,
  fingerprint-matching journal row into a fresh queue and re-runs only
  what was lost.

Replays are deterministic, so in every recovered case the final
``BENCH_chaos.json``, ``report.txt`` and store digests are
byte-identical to an uninterrupted run — except quarantine, which is a
*documented* degradation: quarantined units surface as ``gave-up``
verdicts with a ``quarantined:`` provenance reason.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.campaign import CampaignReport
from repro.chaos.schedules import RandomCampaignConfig, ScheduleResult

from repro.shard.executor import run_executor
from repro.shard.faults import FaultPlan
from repro.shard.health import DEFAULT_ATTEMPTS_CAP, ExecutorSupervisor
from repro.shard.merge import merge_campaign
from repro.shard.planner import CampaignPlan, plan_campaign
from repro.shard.queue import (
    QueueCorruptError,
    ShardQueue,
    integrity_problems,
    quarantine_queue_file,
    queue_path_for,
    salvage_results,
)

#: progress queries hit the contended SQLite file; throttle them to
#: about one per second regardless of how fast the liveness poll spins
PROGRESS_QUERY_EVERY_S = 1.0


class ShardCampaignError(RuntimeError):
    """The campaign could not be completed in this invocation; the queue
    remains resumable."""


def _executor_spawner(
    ctx: Any,
    queue_path: str,
    *,
    lease_s: float,
    cache_dir: Optional[str],
    poll_s: float,
    attempts_cap: int,
):
    def spawn(index: int) -> Any:
        p = ctx.Process(
            target=run_executor,
            args=(queue_path, index),
            kwargs={
                "lease_s": lease_s,
                "cache_dir": cache_dir,
                "poll_s": poll_s,
                "attempts_cap": attempts_cap,
            },
            daemon=False,  # executors must outlive nothing, but be killable
        )
        p.start()
        return p

    return spawn


def _prepare_queue_file(
    queue_path: str, plan: CampaignPlan, salvage: bool
) -> Optional[List[Tuple[int, str, str]]]:
    """Health-check an existing queue file before reuse.

    Returns salvaged journal rows when ``salvage`` rebuilt a corrupt (or
    suspect) queue, else None.  Without ``salvage``, a corrupt queue
    raises :class:`~repro.shard.queue.QueueCorruptError` — merging rows
    out of a damaged file would risk silently-wrong artifacts.
    """
    if not os.path.exists(queue_path):
        return None
    if salvage:
        rows = salvage_results(queue_path, plan)
        quarantine_queue_file(queue_path)
        return rows
    problems = integrity_problems(queue_path)
    if problems:
        raise QueueCorruptError(
            f"queue {queue_path} failed its integrity check "
            f"({problems[0]}); rerun with --salvage to copy every "
            "parseable journal row into a fresh queue, or start a fresh "
            "--out directory"
        )
    return None


def run_sharded_campaign(
    scenarios: Sequence[Any],
    *,
    n_shards: int,
    out_dir: str,
    seed: int = 0,
    obs: str = "off",
    max_occurrences: Optional[int] = None,
    random_cfg: Optional[RandomCampaignConfig] = None,
    lease_s: float = 60.0,
    cache_dir: Optional[str] = None,
    executors: Optional[int] = None,
    poll_s: float = 0.05,
    progress: Any = None,
    mp_context: Optional[str] = None,
    respawn: int = 0,
    respawn_backoff_s: float = 0.25,
    attempts_cap: int = DEFAULT_ATTEMPTS_CAP,
    salvage: bool = False,
    registry: Any = None,
) -> Tuple[
    CampaignPlan,
    List[CampaignReport],
    Optional[List[ScheduleResult]],
    Dict[str, int],
]:
    """Run (or resume) one sharded campaign to completion and merge it.

    ``scenarios`` is one scenario per method, in method order — the same
    list the serial CLI builds.  The queue lives at
    ``queue_path_for(out_dir)``; when it already exists it is resumed
    (after an integrity check and the plan-fingerprint check) and only
    unjournaled units run.  ``executors`` defaults to one process per
    shard, capped at ``n_shards``.  ``respawn`` is the total budget of
    crash respawns the supervisor may spend; ``attempts_cap`` bounds
    barren re-issues before a poison unit is quarantined; ``salvage``
    rebuilds a corrupt queue from its parseable journal rows.
    ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
    receives the ``shard.*`` health counters.  Returns ``(plan,
    matrices, schedules, stats)`` with ``matrices``/``schedules``
    bit-for-bit what the serial engine produces and ``stats`` carrying
    unit/shard progress plus ``respawns``/``quarantined``/
    ``fence_rejections``.

    Raises :class:`ShardCampaignError` when every executor is gone (and
    the respawn budget spent) with shards still unfinished — the queue
    keeps the journal, so rerunning with ``--resume`` continues.
    """
    # validate any armed fault spec *here*, where the error is readable —
    # otherwise every spawned executor would crash on it at startup and
    # the campaign would misreport an infra failure as "all workers died"
    FaultPlan.from_env(0)
    plan = plan_campaign(
        scenarios,
        n_shards=n_shards,
        seed=seed,
        obs=obs,
        max_occurrences=max_occurrences,
        random_cfg=random_cfg,
    )
    os.makedirs(out_dir, exist_ok=True)
    queue_path = queue_path_for(out_dir)
    salvaged = _prepare_queue_file(queue_path, plan, salvage)
    ctx = multiprocessing.get_context(mp_context)
    supervisor: Optional[ExecutorSupervisor] = None
    with ShardQueue(queue_path) as queue:
        queue.populate(plan)  # fresh run or fingerprint-checked resume
        if salvaged:
            queue.restore_results(salvaged)
        n_exec = executors if executors is not None else len(plan.shards)
        n_exec = max(1, min(n_exec, len(plan.shards)))
        if progress is not None:
            progress.start(plan.n_units, n_exec)
        if not queue.all_done():
            supervisor = ExecutorSupervisor(
                _executor_spawner(
                    ctx,
                    queue_path,
                    lease_s=lease_s,
                    cache_dir=cache_dir,
                    poll_s=poll_s,
                    attempts_cap=attempts_cap,
                ),
                n_exec,
                respawn=respawn,
                backoff_s=respawn_backoff_s,
            )
            supervisor.start()
            last_query = float("-inf")
            while True:
                alive = supervisor.poll()
                if alive == 0 and not supervisor.pending_respawns():
                    break
                now = time.monotonic()
                if (
                    progress is not None
                    and now - last_query >= PROGRESS_QUERY_EVERY_S
                ):
                    # liveness polls every poll_s; the queue query is
                    # throttled independently so a tight poll loop does
                    # not hammer the contended SQLite file
                    last_query = now
                    stats = queue.progress()
                    progress.update(
                        stats["done_units"], stats["total_units"], 0, alive
                    )
                time.sleep(poll_s)
            supervisor.join()
        stats = queue.progress()
        stats.update(queue.stats())
        stats["respawns"] = supervisor.respawns if supervisor else 0
        stats["executor_crashes"] = supervisor.crashes if supervisor else 0
        if not queue.all_done():
            exhausted = (
                " (respawn budget exhausted; raise --respawn N to let the "
                "supervisor replace crashed executors)"
                if supervisor is not None and supervisor.exhausted()
                else ""
            )
            raise ShardCampaignError(
                f"campaign incomplete: {stats['done_units']}/"
                f"{stats['total_units']} units journaled, "
                f"{stats['done_shards']}/{stats['total_shards']} shards "
                f"committed — every executor exited{exhausted}; resume with "
                f"--shards {n_shards} --resume {out_dir}"
            )
        outcomes = queue.outcomes()
    if registry is not None:
        for key, metric in (
            ("respawns", "shard.respawns"),
            ("quarantined", "shard.quarantined"),
            ("fence_rejections", "shard.fence_rejections"),
        ):
            if stats.get(key):
                registry.counter(metric).inc(stats[key])
    matrices, schedules = merge_campaign(plan, outcomes)
    if progress is not None:
        progress.finish(stats["done_units"], stats["total_units"], 0, n_exec)
    return plan, matrices, schedules, stats
