"""The SQLite work queue: claim → run → commit, with lease timeouts.

One file (``shards.sqlite`` under the campaign's ``--out`` directory)
holds the whole campaign's durable state: the plan identity, every
shard's lease status and every journaled unit outcome.  All mutations
are single atomic transactions over stdlib :mod:`sqlite3` (WAL mode, so
N executor processes and the driver share the file), which gives the
campaign the crash-consistency story the checkpoint protocols give the
application:

* **claim** — an executor atomically takes the first shard that is
  ``pending`` *or* whose lease expired (its executor died); the lease is
  stamped with an expiry so a crashed claimant's work is re-issued.
* **run** — each finished unit is journaled immediately (``INSERT OR
  REPLACE`` keyed by the unit's plan ordinal), so a shard that dies
  mid-flight loses at most the unit in progress.  Replays are
  deterministic, so a lease race double-running a unit writes the
  identical row — idempotence by content, not by locking.
* **commit** — the shard flips to ``done`` only when every unit is
  journaled; the driver's merge barrier waits on all shards being done.

The queue never parses outcomes: it stores the canonical JSON of
:class:`~repro.par.replay.ReplayOutcome` and hands it back verbatim.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.par.replay import ReplayOutcome

from repro.shard.planner import CampaignPlan

#: bump when the table layout changes incompatibly
QUEUE_SCHEMA_VERSION = 1

#: shard states
PENDING = "pending"
LEASED = "leased"
DONE = "done"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS shards (
    shard_id      TEXT PRIMARY KEY,
    idx           INTEGER NOT NULL,
    n_units       INTEGER NOT NULL,
    status        TEXT NOT NULL,
    owner         TEXT,
    lease_expires REAL,
    attempts      INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS units (
    ord         INTEGER PRIMARY KEY,
    shard_id    TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    spec        BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    ord          INTEGER PRIMARY KEY,
    fingerprint  TEXT NOT NULL,
    outcome_json TEXT NOT NULL
);
"""


class QueueMismatchError(RuntimeError):
    """An existing queue belongs to a different plan (params or code
    changed since it was created); resuming it would merge stale rows."""


class ShardQueue:
    """Crash-tolerant campaign work queue over one SQLite file."""

    def __init__(
        self, path: str, *, clock: Callable[[], float] = time.time
    ) -> None:
        self.path = path
        self.clock = clock
        # autocommit + explicit BEGIN IMMEDIATE where multi-statement
        # atomicity is needed: sqlite3's implicit transaction management
        # and hand-rolled BEGINs do not mix
        self._conn = sqlite3.connect(path, timeout=60.0, isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=60000")
        self._conn.executescript(_SCHEMA)

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ShardQueue":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _txn(self) -> "_Transaction":
        return _Transaction(self._conn)

    # -- meta / population -------------------------------------------------------
    def _meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else str(row[0])

    @property
    def plan_fingerprint(self) -> Optional[str]:
        return self._meta("plan_fingerprint")

    def populate(self, plan: CampaignPlan) -> bool:
        """Bind the queue to ``plan``, inserting shards and units.

        Idempotent: a queue already populated with the *same* plan is
        left untouched (journaled results and shard states survive — the
        resume path).  A queue populated with a different plan raises
        :class:`QueueMismatchError`.  Returns True when the queue was
        freshly populated, False when it resumed an existing one.
        """
        existing = self.plan_fingerprint
        if existing is not None:
            if existing != plan.fingerprint:
                raise QueueMismatchError(
                    f"queue {self.path} was created for plan {existing[:12]}, "
                    f"current invocation plans {plan.fingerprint[:12]} — the "
                    "campaign parameters or the source code changed; start a "
                    "fresh --out directory (or rerun the original command)"
                )
            return False
        with self._txn():
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("schema", str(QUEUE_SCHEMA_VERSION)),
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("plan_fingerprint", plan.fingerprint),
            )
            self._conn.executemany(
                "INSERT INTO shards (shard_id, idx, n_units, status, "
                "attempts) VALUES (?,?,?,?,0)",
                [
                    (s.shard_id, s.index, len(s.unit_ords), PENDING)
                    for s in plan.shards
                ],
            )
            self._conn.executemany(
                "INSERT INTO units (ord, shard_id, fingerprint, spec) "
                "VALUES (?,?,?,?)",
                [
                    (
                        u.ord,
                        s.shard_id,
                        u.fingerprint,
                        pickle.dumps(u.spec, protocol=pickle.HIGHEST_PROTOCOL),
                    )
                    for s in plan.shards
                    for u in (plan.units[o] for o in s.unit_ords)
                ],
            )
        return True

    # -- executor protocol -------------------------------------------------------
    def claim(self, owner: str, lease_s: float) -> Optional[str]:
        """Atomically claim the first runnable shard, or None.

        Runnable means ``pending``, or ``leased`` with an expired lease —
        the crashed-executor re-issue path.  The claim stamps ``owner``
        and a fresh expiry in the same transaction that reads the row, so
        two executors never hold the same live lease.
        """
        now = self.clock()
        with self._txn():
            row = self._conn.execute(
                "SELECT shard_id FROM shards WHERE status = ? OR "
                "(status = ? AND lease_expires < ?) ORDER BY idx LIMIT 1",
                (PENDING, LEASED, now),
            ).fetchone()
            if row is None:
                return None
            shard_id = str(row[0])
            self._conn.execute(
                "UPDATE shards SET status = ?, owner = ?, lease_expires = ?, "
                "attempts = attempts + 1 WHERE shard_id = ?",
                (LEASED, owner, now + lease_s, shard_id),
            )
        return shard_id

    def renew(self, shard_id: str, owner: str, lease_s: float) -> None:
        """Extend a live lease (called after every journaled unit)."""
        with self._txn():
            self._conn.execute(
                "UPDATE shards SET lease_expires = ? "
                "WHERE shard_id = ? AND owner = ? AND status = ?",
                (self.clock() + lease_s, shard_id, owner, LEASED),
            )

    def shard_units(self, shard_id: str) -> List[Tuple[int, str, Any]]:
        """(ord, fingerprint, ReplaySpec) of the shard's units, in plan
        order — the queue is self-contained: an executor needs nothing
        but the queue path to run its claims."""
        return [
            (int(o), str(f), pickle.loads(blob))
            for o, f, blob in self._conn.execute(
                "SELECT ord, fingerprint, spec FROM units WHERE shard_id = ? "
                "ORDER BY ord",
                (shard_id,),
            )
        ]

    def has_result(self, ord: int) -> bool:
        return (
            self._conn.execute(
                "SELECT 1 FROM results WHERE ord = ?", (ord,)
            ).fetchone()
            is not None
        )

    def record(self, ord: int, fingerprint: str, outcome: ReplayOutcome) -> None:
        """Journal one unit outcome — durable the moment this returns."""
        with self._txn():
            self._conn.execute(
                "INSERT OR REPLACE INTO results (ord, fingerprint, "
                "outcome_json) VALUES (?,?,?)",
                (
                    ord,
                    fingerprint,
                    json.dumps(outcome.to_json(), sort_keys=True),
                ),
            )

    def commit_shard(self, shard_id: str, owner: str) -> None:
        """Flip a fully-journaled shard to ``done``."""
        with self._txn():
            self._conn.execute(
                "UPDATE shards SET status = ?, owner = ?, lease_expires = "
                "NULL WHERE shard_id = ?",
                (DONE, owner, shard_id),
            )

    # -- driver / merge reads ----------------------------------------------------
    def all_done(self) -> bool:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM shards WHERE status != ?", (DONE,)
        ).fetchone()
        return int(row[0]) == 0

    def progress(self) -> Dict[str, int]:
        done_units = int(
            self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        )
        total_units = int(
            self._conn.execute("SELECT COUNT(*) FROM units").fetchone()[0]
        )
        done_shards = int(
            self._conn.execute(
                "SELECT COUNT(*) FROM shards WHERE status = ?", (DONE,)
            ).fetchone()[0]
        )
        total_shards = int(
            self._conn.execute("SELECT COUNT(*) FROM shards").fetchone()[0]
        )
        return {
            "done_units": done_units,
            "total_units": total_units,
            "done_shards": done_shards,
            "total_shards": total_shards,
        }

    def outcomes(self) -> Dict[int, ReplayOutcome]:
        """Every journaled outcome, keyed by plan ordinal."""
        out: Dict[int, ReplayOutcome] = {}
        for ord_, doc in self._conn.execute(
            "SELECT ord, outcome_json FROM results ORDER BY ord"
        ):
            out[int(ord_)] = ReplayOutcome.from_json(json.loads(doc))
        return out


class _Transaction:
    """``BEGIN IMMEDIATE`` … ``COMMIT``/``ROLLBACK`` over an autocommit
    connection: takes the write lock up front so claim/journal races
    between executor processes serialize instead of deadlocking."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def __exit__(self, exc_type: Any, *exc: Any) -> None:
        if exc_type is None:
            self._conn.execute("COMMIT")
        else:
            self._conn.execute("ROLLBACK")


def queue_path_for(out_dir: str) -> str:
    """Where a campaign's work queue lives relative to its ``--out``."""
    return os.path.join(out_dir, "shards.sqlite")
