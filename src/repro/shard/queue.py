"""The SQLite work queue: claim → run → commit, with leases and fencing.

One file (``shards.sqlite`` under the campaign's ``--out`` directory)
holds the whole campaign's durable state: the plan identity, every
shard's lease status and every journaled unit outcome.  All mutations
are single atomic transactions over stdlib :mod:`sqlite3` (WAL mode, so
N executor processes and the driver share the file), which gives the
campaign the crash-consistency story the checkpoint protocols give the
application:

* **claim** — an executor atomically takes the first shard that is
  ``pending`` *or* whose lease expired (its executor died); the lease is
  stamped with an expiry so a crashed claimant's work is re-issued.
  Every claim also draws a **fencing token** from a monotonically
  increasing sequence: the token identifies *this* grant of the shard,
  so a stalled-then-revived zombie executor holding a superseded token
  can be told apart from the live claimant.
* **run** — each finished unit is journaled immediately (``INSERT OR
  REPLACE`` keyed by the unit's plan ordinal), so a shard that dies
  mid-flight loses at most the unit in progress.  Replays are
  deterministic, so a lease race double-running a unit writes the
  identical row — idempotence by content, not by locking.  A journal
  write presented with a stale fencing token is *rejected* (counted in
  ``stats()["fence_rejections"]``), so a zombie can never resurrect a
  lease it lost.
* **commit** — the shard flips to ``done`` only when every unit is
  journaled, and only for the claimant whose token is still current;
  the driver's merge barrier waits on all shards being done.

The claim path also reads the shard's previously unread ``attempts``
column, redefined as **consecutive re-issues without journal progress**:
a shard re-claimed from an expired lease with no new journaled units
since the previous claim increments it, any progress (or a fresh claim)
resets it.  The executor quarantines the first unjournaled unit once
``attempts`` reaches its cap — the poison-unit circuit breaker.

The queue never parses outcomes: it stores the canonical JSON of
:class:`~repro.par.replay.ReplayOutcome` and hands it back verbatim.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.par.replay import ReplayOutcome

from repro.shard.planner import CampaignPlan

#: bump when the table layout changes incompatibly
QUEUE_SCHEMA_VERSION = 2

#: shard states
PENDING = "pending"
LEASED = "leased"
DONE = "done"

#: durable counters kept in the ``meta`` table (``stats()`` keys)
STAT_KEYS = ("fence_rejections", "quarantined")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS shards (
    shard_id       TEXT PRIMARY KEY,
    idx            INTEGER NOT NULL,
    n_units        INTEGER NOT NULL,
    status         TEXT NOT NULL,
    owner          TEXT,
    lease_expires  REAL,
    fence          INTEGER NOT NULL DEFAULT 0,
    attempts       INTEGER NOT NULL DEFAULT 0,
    last_journaled INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS units (
    ord         INTEGER PRIMARY KEY,
    shard_id    TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    spec        BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    ord          INTEGER PRIMARY KEY,
    fingerprint  TEXT NOT NULL,
    outcome_json TEXT NOT NULL
);
"""


class QueueMismatchError(RuntimeError):
    """An existing queue belongs to a different plan (params or code
    changed since it was created); resuming it would merge stale rows."""


class QueueCorruptError(RuntimeError):
    """An existing queue file failed ``PRAGMA integrity_check`` (torn
    write, disk fault); resume with ``--salvage`` to recover every
    parseable journal row into a fresh queue."""


@dataclass(frozen=True)
class Lease:
    """One grant of a shard to one executor.

    ``fence`` is the monotonically increasing fencing token drawn at
    claim time; every journal/commit/renew presents it, and the queue
    rejects writes whose token is no longer the shard's current one.
    ``attempts`` counts consecutive re-issues of the shard without
    journal progress — the poison-unit quarantine signal.
    """

    shard_id: str
    owner: str
    fence: int
    attempts: int


class ShardQueue:
    """Crash-tolerant campaign work queue over one SQLite file."""

    def __init__(
        self,
        path: str,
        *,
        clock: Callable[[], float] = time.time,
        fault_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.path = path
        self.clock = clock
        #: chaos hook called at the top of every mutating operation with
        #: the operation name; the torture harness raises injected
        #: ``sqlite3.OperationalError`` from here (see repro.shard.faults)
        self._fault_hook = fault_hook
        # autocommit + explicit BEGIN IMMEDIATE where multi-statement
        # atomicity is needed: sqlite3's implicit transaction management
        # and hand-rolled BEGINs do not mix
        self._conn = sqlite3.connect(path, timeout=60.0, isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=60000")
        self._conn.executescript(_SCHEMA)

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ShardQueue":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _txn(self) -> "_Transaction":
        return _Transaction(self._conn)

    def _fault(self, op: str) -> None:
        if self._fault_hook is not None:
            self._fault_hook(op)

    # -- meta / population -------------------------------------------------------
    def _meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else str(row[0])

    @property
    def plan_fingerprint(self) -> Optional[str]:
        return self._meta("plan_fingerprint")

    def populate(self, plan: CampaignPlan) -> bool:
        """Bind the queue to ``plan``, inserting shards and units.

        Idempotent: a queue already populated with the *same* plan is
        left untouched (journaled results and shard states survive — the
        resume path).  A queue populated with a different plan raises
        :class:`QueueMismatchError`.  Returns True when the queue was
        freshly populated, False when it resumed an existing one.
        """
        existing = self.plan_fingerprint
        if existing is not None:
            if existing != plan.fingerprint:
                raise QueueMismatchError(
                    f"queue {self.path} was created for plan {existing[:12]}, "
                    f"current invocation plans {plan.fingerprint[:12]} — the "
                    "campaign parameters or the source code changed; start a "
                    "fresh --out directory (or rerun the original command)"
                )
            return False
        with self._txn():
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("schema", str(QUEUE_SCHEMA_VERSION)),
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("plan_fingerprint", plan.fingerprint),
            )
            self._conn.executemany(
                "INSERT INTO shards (shard_id, idx, n_units, status, "
                "attempts) VALUES (?,?,?,?,0)",
                [
                    (s.shard_id, s.index, len(s.unit_ords), PENDING)
                    for s in plan.shards
                ],
            )
            self._conn.executemany(
                "INSERT INTO units (ord, shard_id, fingerprint, spec) "
                "VALUES (?,?,?,?)",
                [
                    (
                        u.ord,
                        s.shard_id,
                        u.fingerprint,
                        pickle.dumps(u.spec, protocol=pickle.HIGHEST_PROTOCOL),
                    )
                    for s in plan.shards
                    for u in (plan.units[o] for o in s.unit_ords)
                ],
            )
        return True

    # -- executor protocol -------------------------------------------------------
    def claim(self, owner: str, lease_s: float) -> Optional[Lease]:
        """Atomically claim the first runnable shard, or None.

        Runnable means ``pending``, or ``leased`` with an expired lease —
        the crashed-executor re-issue path.  The claim stamps ``owner``,
        a fresh expiry and a new fencing token in the same transaction
        that reads the row, so two executors never hold the same live
        grant and a superseded claimant's token stops working the moment
        the shard is re-issued.
        """
        self._fault("claim")
        now = self.clock()
        with self._txn():
            row = self._conn.execute(
                "SELECT shard_id, status, attempts, last_journaled "
                "FROM shards WHERE status = ? OR "
                "(status = ? AND lease_expires < ?) ORDER BY idx LIMIT 1",
                (PENDING, LEASED, now),
            ).fetchone()
            if row is None:
                return None
            shard_id, status = str(row[0]), str(row[1])
            prev_attempts, last_journaled = int(row[2]), int(row[3])
            journaled = int(
                self._conn.execute(
                    "SELECT COUNT(*) FROM results WHERE ord IN "
                    "(SELECT ord FROM units WHERE shard_id = ?)",
                    (shard_id,),
                ).fetchone()[0]
            )
            if status == LEASED and journaled == last_journaled:
                # a re-issue that made no progress: the signature of a
                # unit that takes its executor down with it
                attempts = prev_attempts + 1
            else:
                attempts = 0
            fence = int(self._meta("fence_seq") or 0) + 1
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("fence_seq", str(fence)),
            )
            self._conn.execute(
                "UPDATE shards SET status = ?, owner = ?, lease_expires = ?, "
                "fence = ?, attempts = ?, last_journaled = ? "
                "WHERE shard_id = ?",
                (LEASED, owner, now + lease_s, fence, attempts, journaled,
                 shard_id),
            )
        return Lease(
            shard_id=shard_id, owner=owner, fence=fence, attempts=attempts
        )

    def _lease_current(self, lease: Lease) -> bool:
        """Inside a transaction: is this grant still the shard's live one?"""
        row = self._conn.execute(
            "SELECT owner, fence, status FROM shards WHERE shard_id = ?",
            (lease.shard_id,),
        ).fetchone()
        return (
            row is not None
            and row[0] == lease.owner
            and int(row[1]) == lease.fence
            and str(row[2]) == LEASED
        )

    def _bump_stat(self, key: str, n: int = 1) -> None:
        """Inside a transaction: increment a durable counter in ``meta``."""
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET "
            "value = CAST(CAST(value AS INTEGER) + ? AS TEXT)",
            (f"stat.{key}", str(n), n),
        )

    def renew(self, lease: Lease, lease_s: float) -> bool:
        """Extend a live grant; False (and a fence-rejection count) when
        the token was superseded — the caller lost the shard."""
        self._fault("renew")
        with self._txn():
            cur = self._conn.execute(
                "UPDATE shards SET lease_expires = ? WHERE shard_id = ? "
                "AND owner = ? AND fence = ? AND status = ?",
                (self.clock() + lease_s, lease.shard_id, lease.owner,
                 lease.fence, LEASED),
            )
            if cur.rowcount != 1:
                self._bump_stat("fence_rejections")
                return False
        return True

    def shard_units(self, shard_id: str) -> List[Tuple[int, str, Any]]:
        """(ord, fingerprint, ReplaySpec) of the shard's units, in plan
        order — the queue is self-contained: an executor needs nothing
        but the queue path to run its claims."""
        return [
            (int(o), str(f), pickle.loads(blob))
            for o, f, blob in self._conn.execute(
                "SELECT ord, fingerprint, spec FROM units WHERE shard_id = ? "
                "ORDER BY ord",
                (shard_id,),
            )
        ]

    def first_unjournaled(self, shard_id: str) -> Optional[Tuple[int, str]]:
        """(ord, fingerprint) of the shard's first unit with no journaled
        outcome — on a crash-looping shard, the unit that keeps killing
        its claimant (everything before it was journaled; it never is)."""
        row = self._conn.execute(
            "SELECT ord, fingerprint FROM units WHERE shard_id = ? AND ord "
            "NOT IN (SELECT ord FROM results) ORDER BY ord LIMIT 1",
            (shard_id,),
        ).fetchone()
        return None if row is None else (int(row[0]), str(row[1]))

    def has_result(self, ord: int) -> bool:
        return (
            self._conn.execute(
                "SELECT 1 FROM results WHERE ord = ?", (ord,)
            ).fetchone()
            is not None
        )

    def record(
        self,
        ord: int,
        fingerprint: str,
        outcome: ReplayOutcome,
        lease: Optional[Lease] = None,
    ) -> bool:
        """Journal one unit outcome — durable the moment this returns True.

        With a ``lease``, the write is fenced: a superseded token is
        rejected (False + a ``fence_rejections`` count) in the same
        transaction that would have written, so a zombie's journal row
        never lands after the shard was re-issued.  ``lease=None``
        bypasses fencing for trusted writers (salvage, tests).
        """
        self._fault("record")
        with self._txn():
            if lease is not None and not self._lease_current(lease):
                self._bump_stat("fence_rejections")
                return False
            self._conn.execute(
                "INSERT OR REPLACE INTO results (ord, fingerprint, "
                "outcome_json) VALUES (?,?,?)",
                (
                    ord,
                    fingerprint,
                    json.dumps(outcome.to_json(), sort_keys=True),
                ),
            )
        return True

    def record_quarantine(
        self, ord: int, fingerprint: str, outcome: ReplayOutcome, lease: Lease
    ) -> bool:
        """Journal a synthesized quarantine outcome (fenced) and count it."""
        self._fault("record")
        with self._txn():
            if not self._lease_current(lease):
                self._bump_stat("fence_rejections")
                return False
            self._conn.execute(
                "INSERT OR REPLACE INTO results (ord, fingerprint, "
                "outcome_json) VALUES (?,?,?)",
                (ord, fingerprint,
                 json.dumps(outcome.to_json(), sort_keys=True)),
            )
            self._bump_stat("quarantined")
            # quarantining IS progress: reset the barren-re-issue counter
            # so a second poison unit in the shard gets its own budget
            self._conn.execute(
                "UPDATE shards SET attempts = 0, last_journaled = "
                "(SELECT COUNT(*) FROM results WHERE ord IN "
                " (SELECT ord FROM units WHERE shard_id = ?)) "
                "WHERE shard_id = ?",
                (lease.shard_id, lease.shard_id),
            )
        return True

    def commit_shard(self, lease: Lease) -> bool:
        """Flip a fully-journaled shard to ``done`` — fenced: only the
        grant whose token is still current may commit, so a zombie that
        stalled past its lease cannot commit a shard it no longer owns."""
        self._fault("commit")
        with self._txn():
            cur = self._conn.execute(
                "UPDATE shards SET status = ?, lease_expires = NULL "
                "WHERE shard_id = ? AND owner = ? AND fence = ? "
                "AND status = ?",
                (DONE, lease.shard_id, lease.owner, lease.fence, LEASED),
            )
            if cur.rowcount != 1:
                self._bump_stat("fence_rejections")
                return False
        return True

    # -- driver / merge reads ----------------------------------------------------
    def all_done(self) -> bool:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM shards WHERE status != ?", (DONE,)
        ).fetchone()
        return int(row[0]) == 0

    def progress(self) -> Dict[str, int]:
        done_units = int(
            self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        )
        total_units = int(
            self._conn.execute("SELECT COUNT(*) FROM units").fetchone()[0]
        )
        done_shards = int(
            self._conn.execute(
                "SELECT COUNT(*) FROM shards WHERE status = ?", (DONE,)
            ).fetchone()[0]
        )
        total_shards = int(
            self._conn.execute("SELECT COUNT(*) FROM shards").fetchone()[0]
        )
        return {
            "done_units": done_units,
            "total_units": total_units,
            "done_shards": done_shards,
            "total_shards": total_shards,
        }

    def stats(self) -> Dict[str, int]:
        """Durable health counters (fence rejections, quarantined units)."""
        return {
            key: int(self._meta(f"stat.{key}") or 0) for key in STAT_KEYS
        }

    def outcomes(self) -> Dict[int, ReplayOutcome]:
        """Every journaled outcome, keyed by plan ordinal."""
        out: Dict[int, ReplayOutcome] = {}
        for ord_, doc in self._conn.execute(
            "SELECT ord, outcome_json FROM results ORDER BY ord"
        ):
            out[int(ord_)] = ReplayOutcome.from_json(json.loads(doc))
        return out

    def restore_results(self, rows: List[Tuple[int, str, str]]) -> int:
        """Re-insert salvaged ``(ord, fingerprint, outcome_json)`` rows
        (already validated against the plan by :func:`salvage_results`)."""
        with self._txn():
            self._conn.executemany(
                "INSERT OR REPLACE INTO results (ord, fingerprint, "
                "outcome_json) VALUES (?,?,?)",
                rows,
            )
        return len(rows)


class _Transaction:
    """``BEGIN IMMEDIATE`` … ``COMMIT``/``ROLLBACK`` over an autocommit
    connection: takes the write lock up front so claim/journal races
    between executor processes serialize instead of deadlocking."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def __exit__(self, exc_type: Any, *exc: Any) -> None:
        if exc_type is None:
            self._conn.execute("COMMIT")
        else:
            self._conn.execute("ROLLBACK")


def queue_path_for(out_dir: str) -> str:
    """Where a campaign's work queue lives relative to its ``--out``."""
    return os.path.join(out_dir, "shards.sqlite")


# -- corruption recovery ---------------------------------------------------------
def integrity_problems(path: str) -> List[str]:
    """``PRAGMA integrity_check`` findings for a queue file ([] = healthy).

    A file sqlite refuses to open at all reports that refusal as its one
    problem — the caller treats any non-empty list the same way.
    """
    try:
        conn = sqlite3.connect(path, timeout=60.0)
        try:
            rows = conn.execute("PRAGMA integrity_check").fetchall()
            msgs = [str(r[0]) for r in rows]
        finally:
            conn.close()
    except sqlite3.DatabaseError as exc:
        return [f"unreadable queue: {exc}"]
    return [] if msgs == ["ok"] else msgs


def salvage_results(path: str, plan: CampaignPlan) -> List[Tuple[int, str, str]]:
    """Best-effort extraction of journal rows from a (possibly corrupt)
    queue: every ``results`` row that still parses, carries a valid
    outcome document, and matches the plan's fingerprint for its ordinal.
    Rows the corruption ate are simply re-run after the salvage."""
    want = {u.ord: u.fingerprint for u in plan.units}
    rows: List[Tuple[int, str, str]] = []
    try:
        conn = sqlite3.connect(path, timeout=60.0)
    except sqlite3.DatabaseError:
        return rows
    try:
        cur = conn.execute(
            "SELECT ord, fingerprint, outcome_json FROM results ORDER BY ord"
        )
        while True:
            row = cur.fetchone()
            if row is None:
                break
            ord_, fingerprint, doc = int(row[0]), str(row[1]), str(row[2])
            if want.get(ord_) != fingerprint:
                continue  # stale plan or torn row — never merge it
            try:
                ReplayOutcome.from_json(json.loads(doc))
            except Exception:
                continue
            rows.append((ord_, fingerprint, doc))
    except sqlite3.DatabaseError:
        pass  # keep whatever was readable before the corruption
    finally:
        conn.close()
    return rows


def quarantine_queue_file(path: str) -> str:
    """Move a corrupt queue aside (``<path>.corrupt``) with its WAL/SHM
    companions, clearing the way for a freshly salvaged queue."""
    target = path + ".corrupt"
    os.replace(path, target)
    for suffix in ("-wal", "-shm"):
        side = path + suffix
        if os.path.exists(side):
            os.replace(side, target + suffix)
    return target
