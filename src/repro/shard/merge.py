"""Deterministic merger: journaled outcomes → canonical campaign results.

The merger is where byte-identity with the serial engine is won.  It
does *no* classification of its own: it pairs each journaled
:class:`~repro.par.replay.ReplayOutcome` with the plan metadata of its
unit and rebuilds results through the exact same constructors the serial
sweep uses (:func:`~repro.chaos.campaign._kill_result`,
:func:`~repro.chaos.schedules._schedule_result`), in the exact plan
order (kill points in matrix order, then schedules in index order).
Downstream — ``render_campaign``, ``bench_record``, trace-store
ingestion — then runs the serial code paths verbatim, so
``BENCH_chaos.json``, ``report.txt`` and the store digests cannot
diverge by construction.

Results are keyed by plan **ordinal**, never by fingerprint: two random
schedules can legitimately collide on content (e.g. both drew an empty
trigger set), and the ordinal is what keeps them distinct rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.chaos.campaign import CampaignReport, ChaosError, _kill_result
from repro.chaos.schedules import ScheduleResult, _schedule_result
from repro.par.replay import ReplayOutcome

from repro.shard.planner import KIND_KILL, KIND_RANDOM, CampaignPlan


def missing_ords(plan: CampaignPlan, outcomes: Dict[int, ReplayOutcome]) -> List[int]:
    """Plan ordinals with no journaled outcome (the resume to-do list)."""
    return [u.ord for u in plan.units if u.ord not in outcomes]


def quarantined_ords(outcomes: Dict[int, ReplayOutcome]) -> List[int]:
    """Plan ordinals whose journal row is a synthesized poison-unit
    quarantine (see :func:`repro.shard.health.quarantine_outcome`) —
    the merge surfaces these explicitly: they are engine-degradation
    verdicts, not protocol verdicts."""
    from repro.shard.health import is_quarantined

    return sorted(o for o, out in outcomes.items() if is_quarantined(out))


def merge_campaign(
    plan: CampaignPlan, outcomes: Dict[int, ReplayOutcome]
) -> Tuple[List[CampaignReport], Optional[List[ScheduleResult]]]:
    """Fold journaled outcomes into the serial engine's result objects.

    Returns one :class:`CampaignReport` per planned matrix (method
    order) and the randomized :class:`ScheduleResult` list (``None``
    when the plan drew no schedules).  Raises
    :class:`~repro.chaos.campaign.ChaosError` when any unit is missing —
    merging a partial campaign would silently fabricate artifacts.
    """
    missing = missing_ords(plan, outcomes)
    if missing:
        raise ChaosError(
            f"cannot merge: {len(missing)} of {plan.n_units} units have no "
            f"journaled outcome (first missing ord {missing[0]}); resume "
            "the campaign to completion first"
        )
    matrices: List[CampaignReport] = [
        CampaignReport(
            scenario=m.scenario_name,
            params=dict(m.params),
            baseline_makespan_s=m.probe.makespan_s,
        )
        for m in plan.matrices
    ]
    schedules: List[ScheduleResult] = []
    for unit in plan.units:
        outcome = outcomes[unit.ord]
        if unit.kind == KIND_KILL:
            assert unit.point is not None
            matrices[unit.matrix].results.append(
                _kill_result(unit.point, outcome)
            )
        elif unit.kind == KIND_RANDOM:
            assert unit.schedule_index is not None
            schedules.append(
                _schedule_result(
                    unit.schedule_index,
                    list(plan.schedules[unit.schedule_index]),
                    outcome,
                )
            )
        else:  # pragma: no cover - planner enforces the kind vocabulary
            raise ChaosError(f"unknown unit kind {unit.kind!r}")
    schedules.sort(key=lambda s: s.index)
    return matrices, (schedules if plan.schedules else None)
