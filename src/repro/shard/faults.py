"""Declarative infra-chaos faults for the shard runtime itself.

The chaos engine attacks the *application*; this module attacks the
*campaign engine* — the torture harness that proves the shard runtime
self-heals.  Faults are declared in the ``REPRO_SHARD_FAULTS``
environment variable (inherited by every executor the driver spawns) as
semicolon-separated clauses::

    kill:after=2,worker=0          # SIGKILL-grade os._exit after 2 journaled units
    zombie:after=1,worker=1,stall=2.0   # stall past the lease, then keep writing
    poison:ord=5                   # unit 5 hard-kills whichever executor runs it
    busy:ops=3                     # first 3 queue ops raise OperationalError
    skew:delta=-30,worker=2        # worker 2's queue clock runs 30s behind

Each clause is ``kind:key=val[,key=val...]``; ``worker`` selects one
executor index (default: all of them).  Malformed specs raise
:class:`FaultSpecError` naming the variable — a typo in a chaos spec
must never look like a passing campaign.

The legacy hooks ``REPRO_SHARD_DIE_AFTER``/``REPRO_SHARD_DIE_WORKER``
are folded in as a ``kill`` clause, with the same strict validation.

Fault classes and what they prove:

* ``kill`` — the re-issue path: an expired lease is claimed by a
  survivor (or a respawned executor) which skips the journaled prefix.
* ``zombie`` — fencing: the stalled executor revives after its lease
  was re-issued and every one of its writes is rejected, not silently
  accepted.
* ``poison`` — quarantine: a unit that kills every executor that runs
  it is journaled as a synthesized ``gave-up`` outcome after
  ``attempts_cap`` barren re-issues instead of crash-looping forever.
* ``busy`` — transient-failure retry: injected
  ``sqlite3.OperationalError`` (the shape of ``database is locked``
  past ``busy_timeout``, or a full disk) is absorbed by jittered
  backoff, never surfaced as a campaign failure.
* ``skew`` — lease arithmetic under a wrong clock: fencing keeps a
  skewed executor's stale grants out of the journal, and artifacts stay
  byte-identical.
"""

from __future__ import annotations

import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

#: env var holding the declarative fault spec
FAULTS_ENV = "REPRO_SHARD_FAULTS"

#: legacy single-fault hooks (equivalent to ``kill:after=K,worker=W``)
DIE_AFTER_ENV = "REPRO_SHARD_DIE_AFTER"
DIE_WORKER_ENV = "REPRO_SHARD_DIE_WORKER"

#: ``os._exit`` code of a fault-injected death, so tests can tell a
#: simulated crash from a real one
DIE_EXIT_CODE = 86
#: ``os._exit`` code of a poison-unit death (distinct from ``kill`` so
#: the torture tests can assert *which* fault felled an executor)
POISON_EXIT_CODE = 87

KIND_KILL = "kill"
KIND_ZOMBIE = "zombie"
KIND_POISON = "poison"
KIND_BUSY = "busy"
KIND_SKEW = "skew"

_KINDS = (KIND_KILL, KIND_ZOMBIE, KIND_POISON, KIND_BUSY, KIND_SKEW)


class FaultSpecError(ValueError):
    """A malformed fault spec (bad clause grammar, bad value, unknown
    kind/key) — always names the environment variable at fault."""


@dataclass(frozen=True)
class Fault:
    """One parsed fault clause."""

    kind: str
    #: units journaled in-process before the fault fires (kill/zombie)
    after: int = 0
    #: executor index the fault targets; None = every executor
    worker: Optional[int] = None
    #: how long a zombie stalls (seconds past its lease)
    stall_s: float = 0.0
    #: plan ordinal a poison fault hard-kills the executor on
    ord: int = -1
    #: how many queue operations raise injected OperationalError
    ops: int = 0
    #: queue-clock offset of a skewed executor (seconds, signed)
    delta_s: float = 0.0

    def targets(self, worker_index: int) -> bool:
        return self.worker is None or self.worker == worker_index


def _bad(env: str, raw: str, why: str) -> FaultSpecError:
    return FaultSpecError(f"invalid {env}={raw!r}: {why}")


def _parse_worker(env: str, raw: str, value: str) -> Optional[int]:
    if value == "all":
        return None
    try:
        worker = int(value)
    except ValueError:
        raise _bad(env, raw, f"worker must be an integer or 'all', got {value!r}") from None
    if worker < 0:
        raise _bad(env, raw, f"worker must be >= 0, got {worker}")
    return worker


def _clause_fields(raw: str, clause: str) -> Tuple[str, Dict[str, str]]:
    head, _, tail = clause.partition(":")
    kind = head.strip()
    if kind not in _KINDS:
        raise _bad(FAULTS_ENV, raw, f"unknown fault kind {kind!r}; choose from {_KINDS}")
    fields: Dict[str, str] = {}
    if tail.strip():
        for item in tail.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key.strip() or not value.strip():
                raise _bad(FAULTS_ENV, raw, f"expected key=value, got {item!r}")
            fields[key.strip()] = value.strip()
    return kind, fields


def _take(raw: str, fields: Dict[str, str], key: str, conv, *, required=False, default=None):
    if key not in fields:
        if required:
            raise _bad(FAULTS_ENV, raw, f"fault requires {key}=...")
        return default
    value = fields.pop(key)
    try:
        return conv(value)
    except (TypeError, ValueError):
        raise _bad(FAULTS_ENV, raw, f"bad value for {key}: {value!r}") from None


def parse_faults(raw: Optional[str]) -> List[Fault]:
    """Parse a ``REPRO_SHARD_FAULTS`` spec string (None/empty → no faults)."""
    if not raw or not raw.strip():
        return []
    faults: List[Fault] = []
    for clause in raw.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, fields = _clause_fields(raw, clause)
        worker = (
            _parse_worker(FAULTS_ENV, raw, fields.pop("worker"))
            if "worker" in fields
            else None
        )
        if kind == KIND_KILL:
            after = _take(raw, fields, "after", int, required=True)
            if after < 1:
                raise _bad(FAULTS_ENV, raw, f"kill needs after >= 1, got {after}")
            fault = Fault(kind=kind, after=after, worker=worker)
        elif kind == KIND_ZOMBIE:
            after = _take(raw, fields, "after", int, required=True)
            stall = _take(raw, fields, "stall", float, required=True)
            if after < 1:
                raise _bad(FAULTS_ENV, raw, f"zombie needs after >= 1, got {after}")
            if stall <= 0:
                raise _bad(FAULTS_ENV, raw, f"zombie needs stall > 0, got {stall}")
            fault = Fault(kind=kind, after=after, stall_s=stall, worker=worker)
        elif kind == KIND_POISON:
            ord_ = _take(raw, fields, "ord", int, required=True)
            if ord_ < 0:
                raise _bad(FAULTS_ENV, raw, f"poison needs ord >= 0, got {ord_}")
            fault = Fault(kind=kind, ord=ord_, worker=worker)
        elif kind == KIND_BUSY:
            ops = _take(raw, fields, "ops", int, required=True)
            if ops < 1:
                raise _bad(FAULTS_ENV, raw, f"busy needs ops >= 1, got {ops}")
            fault = Fault(kind=kind, ops=ops, worker=worker)
        else:  # KIND_SKEW
            delta = _take(raw, fields, "delta", float, required=True)
            if delta == 0:
                raise _bad(FAULTS_ENV, raw, "skew needs a nonzero delta")
            fault = Fault(kind=kind, delta_s=delta, worker=worker)
        if fields:
            raise _bad(
                FAULTS_ENV, raw,
                f"unknown key(s) for {kind}: {', '.join(sorted(fields))}",
            )
        faults.append(fault)
    return faults


def legacy_kill_fault(environ: Optional[Dict[str, str]] = None) -> Optional[Fault]:
    """Fold ``REPRO_SHARD_DIE_AFTER``/``_WORKER`` into a ``kill`` fault,
    validating both variables with errors that name them."""
    env = os.environ if environ is None else environ
    raw = env.get(DIE_AFTER_ENV)
    if raw is None:
        return None
    try:
        after = int(raw)
    except ValueError:
        raise _bad(DIE_AFTER_ENV, raw, "must be an integer count of journaled units") from None
    if after < 1:
        raise _bad(DIE_AFTER_ENV, raw, f"must be >= 1, got {after}")
    victim = env.get(DIE_WORKER_ENV, "0")
    worker = _parse_worker(DIE_WORKER_ENV, victim, victim)
    return Fault(kind=KIND_KILL, after=after, worker=worker)


class FaultPlan:
    """The faults one executor process arms, with their runtime state.

    Hook points, called by :func:`repro.shard.executor.run_executor`:

    * :meth:`queue_hook` — installed as the queue's ``fault_hook``;
      raises injected ``OperationalError`` while the busy budget lasts.
    * :meth:`check_poison` — before running a unit; hard-exits on a
      poisoned ordinal (the crash fires *before* the journal write, so
      the unit is barren on every re-issue — the quarantine signature).
    * :meth:`check_kill` — after each journaled unit; ``kill``
      hard-exits once the count is reached.
    * :meth:`zombie_stall` — after each journaled unit; returns the
      stall duration the first time a ``zombie`` fault trips (the
      executor suspends its heartbeat — a SIGSTOP freezes that thread
      too — sleeps past the lease, then keeps (vainly) writing).
    * :attr:`clock_offset_s` — summed skew applied to the executor's
      queue clock.
    """

    def __init__(
        self,
        faults: List[Fault],
        worker_index: int,
        *,
        sleep: Callable[[float], None] = time.sleep,
        hard_exit: Callable[[int], None] = os._exit,  # type: ignore[assignment]
    ) -> None:
        self.worker_index = worker_index
        self.faults = [f for f in faults if f.targets(worker_index)]
        self._sleep = sleep
        self._hard_exit = hard_exit
        self._busy_left = sum(f.ops for f in self.faults if f.kind == KIND_BUSY)
        self._zombie_fired = False
        self._poison_ords = {
            f.ord for f in self.faults if f.kind == KIND_POISON
        }
        self.clock_offset_s = sum(
            f.delta_s for f in self.faults if f.kind == KIND_SKEW
        )

    @classmethod
    def from_env(
        cls, worker_index: int, environ: Optional[Dict[str, str]] = None, **kw
    ) -> "FaultPlan":
        env = os.environ if environ is None else environ
        faults = parse_faults(env.get(FAULTS_ENV))
        legacy = legacy_kill_fault(env)
        if legacy is not None:
            faults.append(legacy)
        return cls(faults, worker_index, **kw)

    @property
    def armed(self) -> bool:
        return bool(self.faults)

    def queue_hook(self, op: str) -> None:
        if self._busy_left > 0:
            self._busy_left -= 1
            raise sqlite3.OperationalError(
                f"database is locked (injected by {FAULTS_ENV} busy fault, "
                f"op={op}, {self._busy_left} left)"
            )

    def check_poison(self, ord_: int) -> None:
        if ord_ in self._poison_ords:
            self._hard_exit(POISON_EXIT_CODE)

    def check_kill(self, executed: int) -> None:
        for fault in self.faults:
            if fault.kind == KIND_KILL and executed >= fault.after:
                self._hard_exit(DIE_EXIT_CODE)

    def zombie_stall(self, executed: int) -> Optional[float]:
        """Stall duration when a zombie fault trips now (fires once)."""
        for fault in self.faults:
            if (
                fault.kind == KIND_ZOMBIE
                and not self._zombie_fired
                and executed >= fault.after
            ):
                self._zombie_fired = True
                return fault.stall_s
        return None

    def sleep(self, seconds: float) -> None:
        self._sleep(seconds)
