"""repro.shard — the self-healing, crash-tolerant sharded campaign engine.

``repro chaos --workers N`` fans replays over one multiprocessing pool;
lose the host and the whole campaign is gone.  This package holds the
campaign engine to the same bar the paper holds recovery machinery to:
the campaign itself must survive failures *of the campaign engine*.

Pieces:

* :mod:`repro.shard.planner` — partitions a kill matrix / randomized
  campaign into pickleable, content-addressed shards.  Unit identity is
  the :func:`~repro.par.cache.replay_fingerprint` the memo cache already
  uses; shard identity is a digest over its member fingerprints, and the
  plan fingerprint over the shard ids — change any parameter or any
  source file and the plan no longer matches a stale queue.
* :mod:`repro.shard.queue` — a SQLite work queue (claim → run → commit)
  with lease timeouts and **fencing tokens**: a shard whose executor
  died is re-issued once its lease expires, per-unit journaling means a
  re-issued shard skips everything the dead executor already finished,
  and a zombie claimant's writes are rejected the moment its grant is
  superseded.
* :mod:`repro.shard.executor` — the worker loop: claim a shard, replay
  each unjournaled unit (crash-folded exactly like the serial engine),
  journal the outcome under the fencing token, keep the lease alive via
  a heartbeat thread, commit the shard.
* :mod:`repro.shard.health` — the self-healing layer: the driver-side
  :class:`~repro.shard.health.ExecutorSupervisor` (respawn dead
  executors under a backoff budget), the executor-side
  :class:`~repro.shard.health.LeaseHeartbeat`, transient-``sqlite3``
  retry, and the poison-unit quarantine policy.
* :mod:`repro.shard.faults` — the declarative infra-chaos harness
  (``REPRO_SHARD_FAULTS``): SIGKILL-grade deaths, zombie stalls, poison
  units, injected ``OperationalError``, clock skew — the torture suite
  that proves the above actually heals.
* :mod:`repro.shard.merge` — folds journaled outcomes back into the
  canonical :class:`~repro.chaos.campaign.CampaignReport` /
  :class:`~repro.chaos.schedules.ScheduleResult` sequences, so the
  ``BENCH_chaos.json``, ``report.txt`` and trace-store digests are
  byte-identical to the serial engine's, and surfaces quarantined units.
* :mod:`repro.shard.driver` — ``repro chaos --shards N [--resume DIR]
  [--respawn N] [--salvage]``: create or reopen the queue (integrity-
  checked; salvageable when corrupt), launch supervised executors,
  wait, merge.  Killing the driver or any executor mid-campaign and
  resuming completes the campaign with byte-identical artifacts.

Replay determinism is what makes this sound: every unit is a pure
function of its fingerprint, so re-running a lost unit (or running it
twice during a lease race) produces the identical journal row — and
fencing decides which of two racing claimants' *commits* counts.
"""

from repro.shard.driver import ShardCampaignError, run_sharded_campaign
from repro.shard.executor import run_executor
from repro.shard.faults import FaultPlan, FaultSpecError, parse_faults
from repro.shard.health import (
    DEFAULT_ATTEMPTS_CAP,
    ExecutorSupervisor,
    LeaseHeartbeat,
    quarantine_outcome,
    retry_transient,
)
from repro.shard.merge import merge_campaign, quarantined_ords
from repro.shard.planner import (
    PLAN_SCHEMA_VERSION,
    CampaignPlan,
    MatrixPlan,
    PlannedUnit,
    ShardPlan,
    plan_campaign,
)
from repro.shard.queue import (
    QUEUE_SCHEMA_VERSION,
    Lease,
    QueueCorruptError,
    QueueMismatchError,
    ShardQueue,
)

__all__ = [
    "DEFAULT_ATTEMPTS_CAP",
    "PLAN_SCHEMA_VERSION",
    "QUEUE_SCHEMA_VERSION",
    "CampaignPlan",
    "ExecutorSupervisor",
    "FaultPlan",
    "FaultSpecError",
    "Lease",
    "LeaseHeartbeat",
    "MatrixPlan",
    "PlannedUnit",
    "QueueCorruptError",
    "QueueMismatchError",
    "ShardCampaignError",
    "ShardPlan",
    "ShardQueue",
    "merge_campaign",
    "parse_faults",
    "plan_campaign",
    "quarantine_outcome",
    "quarantined_ords",
    "retry_transient",
    "run_executor",
    "run_sharded_campaign",
]
