"""repro.shard — the crash-tolerant sharded campaign engine.

``repro chaos --workers N`` fans replays over one multiprocessing pool;
lose the host and the whole campaign is gone.  This package holds the
campaign engine to the same bar the paper holds recovery machinery to:
the campaign itself must survive failures *of the campaign engine*.

Pieces:

* :mod:`repro.shard.planner` — partitions a kill matrix / randomized
  campaign into pickleable, content-addressed shards.  Unit identity is
  the :func:`~repro.par.cache.replay_fingerprint` the memo cache already
  uses; shard identity is a digest over its member fingerprints, and the
  plan fingerprint over the shard ids — change any parameter or any
  source file and the plan no longer matches a stale queue.
* :mod:`repro.shard.queue` — a SQLite work queue (claim → run → commit)
  with lease timeouts: a shard whose executor died is re-issued once its
  lease expires, and per-unit journaling means a re-issued shard skips
  everything the dead executor already finished.
* :mod:`repro.shard.executor` — the worker loop: claim a shard, replay
  each unjournaled unit (crash-folded exactly like the serial engine),
  journal the outcome, commit the shard.
* :mod:`repro.shard.merge` — folds journaled outcomes back into the
  canonical :class:`~repro.chaos.campaign.CampaignReport` /
  :class:`~repro.chaos.schedules.ScheduleResult` sequences, so the
  ``BENCH_chaos.json``, ``report.txt`` and trace-store digests are
  byte-identical to the serial engine's.
* :mod:`repro.shard.driver` — ``repro chaos --shards N [--resume DIR]``:
  create or reopen the queue, launch executors, wait, merge.  Killing
  the driver or any executor mid-campaign and resuming completes the
  campaign with byte-identical artifacts.

Replay determinism is what makes this sound: every unit is a pure
function of its fingerprint, so re-running a lost unit (or running it
twice during a lease race) produces the identical journal row.
"""

from repro.shard.driver import ShardCampaignError, run_sharded_campaign
from repro.shard.executor import run_executor
from repro.shard.merge import merge_campaign
from repro.shard.planner import (
    PLAN_SCHEMA_VERSION,
    CampaignPlan,
    MatrixPlan,
    PlannedUnit,
    ShardPlan,
    plan_campaign,
)
from repro.shard.queue import QUEUE_SCHEMA_VERSION, ShardQueue

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "QUEUE_SCHEMA_VERSION",
    "CampaignPlan",
    "MatrixPlan",
    "PlannedUnit",
    "ShardCampaignError",
    "ShardPlan",
    "ShardQueue",
    "merge_campaign",
    "plan_campaign",
    "run_executor",
    "run_sharded_campaign",
]
