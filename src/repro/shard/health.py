"""Self-healing machinery for the shard runtime: supervision, heartbeats,
transient-failure retry, and the poison-unit quarantine policy.

The sharded engine (PR 8) gave the *application under test* crash
tolerance; this module gives it to the campaign engine itself.  Four
pieces, composed by :mod:`repro.shard.driver` and
:mod:`repro.shard.executor`:

* :class:`ExecutorSupervisor` — the driver-side nanny.  Detects dead
  executor processes, respawns them under an exponential-backoff retry
  budget, degrades gracefully to fewer workers when a slot's budget is
  gone, and reports when nothing is left alive (the exit-3 resume
  path).  A clean exit (code 0 — the queue drained) retires the slot
  instead of burning budget.
* :class:`LeaseHeartbeat` — the executor-side keepalive.  A daemon
  thread renews the shard lease on its own queue connection every
  quarter-lease, so a unit that runs longer than ``lease_s`` is not
  re-issued mid-flight.  A renewal rejected by fencing (the shard was
  re-issued anyway — e.g. the executor was SIGSTOPped into a zombie)
  latches :attr:`LeaseHeartbeat.lost`; the executor abandons the shard
  at the next unit boundary.  The thread never touches virtual time or
  any artifact — it only writes ``lease_expires``.
* :func:`retry_transient` — jittered exponential backoff for
  ``sqlite3.OperationalError`` (``database is locked`` past
  ``busy_timeout``, disk full).  Jitter is derived from a hash, not an
  RNG, so the executor stays seed-free and simlint-clean.
* :func:`quarantine_outcome` — the synthesized ``gave-up`` journal row
  for a unit that repeatedly takes its executor down with it, carrying
  its provenance (re-issue count, cap, shard) in ``gave_up_reason``.
"""

from __future__ import annotations

import hashlib
import sqlite3
import threading
import time
from typing import Any, Callable, List, Optional, TypeVar

from repro.par.replay import CRASH_VERDICT, ReplayOutcome

from repro.shard.queue import Lease, ShardQueue

T = TypeVar("T")

#: consecutive barren re-issues of a shard before its first unjournaled
#: unit is quarantined (CLI ``--attempts-cap``)
DEFAULT_ATTEMPTS_CAP = 3

#: ``gave_up_reason`` prefix marking a synthesized quarantine outcome —
#: the merge/report side greps for this to surface quarantined units
QUARANTINE_PREFIX = "quarantined:"


# -- transient-failure retry -----------------------------------------------------
def _jitter01(seed: str, attempt: int) -> float:
    """Deterministic stand-in for random jitter in [0, 1): different
    (owner, attempt) pairs decorrelate without consuming any RNG."""
    digest = hashlib.sha256(f"{seed}:{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") / 2.0**32


def retry_transient(
    fn: Callable[[], T],
    *,
    retries: int = 5,
    base_s: float = 0.05,
    cap_s: float = 1.0,
    seed: str = "",
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn``, absorbing up to ``retries`` transient SQLite errors
    with jittered exponential backoff; the last error propagates."""
    attempt = 0
    while True:
        try:
            return fn()
        except sqlite3.OperationalError:
            if attempt >= retries:
                raise
            delay = min(cap_s, base_s * (2.0**attempt))
            sleep(delay * (0.5 + _jitter01(seed, attempt)))
            attempt += 1


# -- quarantine ------------------------------------------------------------------
def quarantine_outcome(
    shard_id: str, ord_: int, attempts: int, cap: int
) -> ReplayOutcome:
    """The synthesized journal row for a poison unit.  Deterministic
    text (no pids, no clocks): a resumed campaign that re-quarantines
    the same unit writes the identical row."""
    return ReplayOutcome(
        verdict=CRASH_VERDICT,
        n_restarts=0,
        makespan_s=0.0,
        gave_up_reason=(
            f"{QUARANTINE_PREFIX} unit {ord_} crashed its executor on "
            f"{attempts} consecutive re-issues of shard {shard_id[:12]} "
            f"without progress (attempts_cap={cap})"
        ),
        fired=(),
    )


def is_quarantined(outcome: ReplayOutcome) -> bool:
    return bool(
        outcome.gave_up_reason
        and outcome.gave_up_reason.startswith(QUARANTINE_PREFIX)
    )


# -- executor-side lease heartbeat -----------------------------------------------
class LeaseHeartbeat:
    """Renew one lease from a daemon thread until stopped or fenced out.

    The thread owns its own SQLite connection (sqlite3 connections are
    not shareable across threads), renews every ``interval_s`` (default
    a quarter of the lease), and latches :attr:`lost` the first time a
    renewal is rejected — the fencing token was superseded, so the
    executor no longer owns the shard.  Transient SQLite errors are
    skipped, not fatal: the next tick retries, and fencing (not the
    heartbeat) is what guards correctness.
    """

    def __init__(
        self,
        queue_path: str,
        lease: Lease,
        lease_s: float,
        *,
        interval_s: Optional[float] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.queue_path = queue_path
        self.lease = lease
        self.lease_s = lease_s
        self.interval_s = (
            interval_s
            if interval_s is not None
            else max(min(lease_s / 4.0, 5.0), 0.02)
        )
        self._clock = clock
        self._stop = threading.Event()  # simlint: allow[threading] -- host-side lease keepalive; never touches virtual time
        self._lost = threading.Event()  # simlint: allow[threading] -- host-side lease keepalive; never touches virtual time
        self._thread: Optional[threading.Thread] = None

    @property
    def lost(self) -> bool:
        """True once a renewal was fence-rejected: abandon the shard."""
        return self._lost.is_set()

    def start(self) -> "LeaseHeartbeat":
        self._thread = threading.Thread(  # simlint: allow[threading] -- host-side lease keepalive; never touches virtual time
            target=self._run, name=f"lease-hb-{self.lease.shard_id[:8]}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "LeaseHeartbeat":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            with ShardQueue(self.queue_path, clock=self._clock) as queue:
                while not self._stop.wait(self.interval_s):
                    try:
                        ok = queue.renew(self.lease, self.lease_s)
                    except sqlite3.OperationalError:
                        continue  # transient; next tick retries
                    if not ok:
                        self._lost.set()
                        return
        except Exception:
            # best-effort by design: a dead heartbeat merely lets the
            # lease expire, and fencing keeps that safe
            pass


# -- driver-side executor supervision --------------------------------------------
class _Slot:
    """One executor position: a live process, a pending respawn, or retired."""

    __slots__ = ("index", "proc", "deaths", "respawn_at", "retired")

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc: Optional[Any] = None
        self.deaths = 0
        self.respawn_at: Optional[float] = None
        self.retired = False


class ExecutorSupervisor:
    """Keep up to ``n_slots`` executors running against the queue.

    ``spawn(index)`` must return a process-like object (``is_alive()``,
    ``exitcode``, ``join()``) — the driver passes a closure over
    ``multiprocessing.Process``; the tests pass fakes.  ``respawn`` is
    the *total* budget of crash respawns across all slots (0 preserves
    the pre-supervision behaviour: a dead executor stays dead).  Each
    slot backs off exponentially — ``backoff_s * 2**(deaths-1)``, capped
    — so a hard crash loop cannot hammer the host; the poison-unit
    quarantine is what actually breaks such loops.
    """

    def __init__(
        self,
        spawn: Callable[[int], Any],
        n_slots: int,
        *,
        respawn: int = 0,
        backoff_s: float = 0.25,
        backoff_cap_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        if respawn < 0:
            raise ValueError(f"respawn budget must be >= 0, got {respawn}")
        self._spawn = spawn
        self._clock = clock
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.budget = respawn
        self.respawns = 0
        self.crashes = 0
        self._slots: List[_Slot] = [_Slot(i) for i in range(n_slots)]

    def start(self) -> None:
        for slot in self._slots:
            slot.proc = self._spawn(slot.index)

    def backoff_for(self, deaths: int) -> float:
        """Respawn delay after a slot's ``deaths``-th crash."""
        return min(self.backoff_cap_s, self.backoff_s * (2.0 ** (deaths - 1)))

    def poll(self) -> int:
        """Reap deaths, fire due respawns; returns live executor count."""
        now = self._clock()
        alive = 0
        for slot in self._slots:
            if slot.retired:
                continue
            if slot.proc is not None:
                if slot.proc.is_alive():
                    alive += 1
                    continue
                exitcode = slot.proc.exitcode
                slot.proc.join()
                slot.proc = None
                if exitcode == 0:
                    # drained the queue and left cleanly — not a crash
                    slot.retired = True
                    continue
                self.crashes += 1
                slot.deaths += 1
                if self.budget > 0:
                    slot.respawn_at = now + self.backoff_for(slot.deaths)
                else:
                    slot.retired = True  # degraded: fewer workers from here on
                continue
            # pending respawn
            if slot.respawn_at is None:
                slot.retired = True
                continue
            if now >= slot.respawn_at:
                if self.budget <= 0:
                    slot.retired = True
                    continue
                self.budget -= 1
                self.respawns += 1
                slot.respawn_at = None
                slot.proc = self._spawn(slot.index)
                alive += 1
        return alive

    def pending_respawns(self) -> bool:
        """True while any slot is waiting out its backoff delay."""
        return any(
            not s.retired and s.proc is None and s.respawn_at is not None
            for s in self._slots
        )

    def exhausted(self) -> bool:
        """True when crashes happened and no respawn budget remains."""
        return self.crashes > 0 and self.budget == 0

    def join(self) -> None:
        for slot in self._slots:
            if slot.proc is not None:
                slot.proc.join()
