"""Shard planner: a campaign becomes pickleable, content-addressed shards.

The planner runs where the serial engine starts: probe each method's
baseline, enumerate the kill matrix, draw the randomized schedules from
the campaign seed.  But instead of replaying, it freezes the whole
campaign into an ordered list of :class:`PlannedUnit` work items — each a
pickleable :class:`~repro.par.replay.ReplaySpec` plus the metadata the
merger needs to rebuild the canonical result objects — and stripes them
over ``n_shards`` :class:`ShardPlan` partitions.

Identity is content-addressed at every level, reusing the memo cache's
vocabulary:

* **unit id** = :func:`~repro.par.cache.replay_fingerprint` of its spec
  (scenario kwargs + triggers + obs mode + code fingerprint) — the same
  key the cache and the trace store use, so one fact names the work
  everywhere;
* **shard id** = digest over its member unit fingerprints, in order;
* **plan fingerprint** = digest over the shard ids.

A queue created from one plan refuses to resume under another: edit any
source file, change any campaign knob, and the plan fingerprint moves —
a stale queue is an error, never silently-wrong artifacts.

Everything in a plan is deterministic (probes ride virtual clocks,
schedules derive from the seed), so a resumed driver re-plans from the
command line alone and lands on the identical plan.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.campaign import (
    BaselineProbe,
    ChaosError,
    KillPoint,
    enumerate_kill_points,
    point_trigger,
    probe_baseline,
)
from repro.chaos.schedules import RandomCampaignConfig, generate_schedule
from repro.par.cache import code_fingerprint, replay_fingerprint
from repro.par.replay import ReplaySpec

#: bump when the plan/queue layout changes incompatibly
PLAN_SCHEMA_VERSION = 1

KIND_KILL = "kill"
KIND_RANDOM = "random"


@dataclass(frozen=True)
class PlannedUnit:
    """One replay job plus the metadata the merger rebuilds results from."""

    ord: int
    kind: str  # "kill" | "random"
    #: index into :attr:`CampaignPlan.matrices` (kill units only)
    matrix: int
    fingerprint: str
    spec: ReplaySpec
    #: kill: the matrix point; random: the schedule index
    point: Optional[KillPoint] = None
    schedule_index: Optional[int] = None


@dataclass
class MatrixPlan:
    """One method's kill matrix: scenario recipe, probe, points."""

    scenario_name: str
    params: Dict[str, Any]
    spec: Any  # ScenarioSpec
    probe: BaselineProbe
    points: List[KillPoint]


@dataclass(frozen=True)
class ShardPlan:
    """One content-addressed partition of the campaign's units."""

    shard_id: str
    index: int
    unit_ords: Tuple[int, ...]


@dataclass
class CampaignPlan:
    """The frozen campaign: everything an executor or merger needs."""

    seed: int
    obs: str
    methods: List[str]
    matrices: List[MatrixPlan]
    #: randomized schedules (trigger lists) drawn against matrices[0]
    schedules: List[List[Any]]
    units: List[PlannedUnit] = field(default_factory=list)
    shards: List[ShardPlan] = field(default_factory=list)
    fingerprint: str = ""

    @property
    def n_units(self) -> int:
        return len(self.units)

    def shard_of(self, shard_id: str) -> ShardPlan:
        for s in self.shards:
            if s.shard_id == shard_id:
                return s
        raise KeyError(shard_id)


def _shard_id(unit_fingerprints: Sequence[str]) -> str:
    doc = {"schema": PLAN_SCHEMA_VERSION, "units": list(unit_fingerprints)}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _plan_fingerprint(shards: Sequence[ShardPlan], obs: str, seed: int) -> str:
    doc = {
        "schema": PLAN_SCHEMA_VERSION,
        "code": code_fingerprint(),
        "obs": obs,
        "seed": seed,
        "shards": [s.shard_id for s in shards],
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def partition(n_units: int, n_shards: int) -> List[Tuple[int, ...]]:
    """Round-robin striping of unit ordinals over ``n_shards`` — the
    deterministic partition that balances a heterogeneous tail (random
    schedules are costlier than single kill points) without needing cost
    estimates.  Empty stripes are dropped, so ``n_shards`` larger than
    the campaign degrades gracefully."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    stripes = [
        tuple(range(i, n_units, n_shards)) for i in range(n_shards)
    ]
    return [s for s in stripes if s]


def plan_campaign(
    scenarios: Sequence[Any],
    *,
    n_shards: int,
    seed: int = 0,
    obs: str = "off",
    max_occurrences: Optional[int] = None,
    random_cfg: Optional[RandomCampaignConfig] = None,
    probes: Optional[Sequence[BaselineProbe]] = None,
) -> CampaignPlan:
    """Freeze one ``repro chaos`` campaign into a sharded plan.

    ``scenarios`` is one :class:`~repro.chaos.scenarios.ChaosScenario`
    per method, in method order — exactly what the serial CLI builds.
    ``random_cfg`` (if given) draws the randomized schedules against the
    first scenario, mirroring the serial engine.  ``probes`` may carry
    already-computed baselines (the driver reuses them on resume);
    otherwise each scenario is probed here.

    Raises :class:`~repro.chaos.campaign.ChaosError` for scenarios
    without a pickleable spec — a closure-factory scenario cannot cross
    an executor process boundary, same rule as ``--workers N``.
    """
    methods: List[str] = []
    matrices: List[MatrixPlan] = []
    units: List[PlannedUnit] = []
    for idx, scenario in enumerate(scenarios):
        if scenario.spec is None:
            raise ChaosError(
                f"scenario {scenario.name!r} has no pickleable spec "
                "(custom factory/protocol closure); it cannot be sharded"
            )
        probe = (
            probes[idx] if probes is not None else probe_baseline(scenario)
        )
        points = enumerate_kill_points(probe, max_occurrences=max_occurrences)
        matrices.append(
            MatrixPlan(
                scenario_name=scenario.name,
                params=dict(scenario.params),
                spec=scenario.spec,
                probe=probe,
                points=points,
            )
        )
        methods.append(str(scenario.params.get("method", "?")))
        for point in points:
            spec = ReplaySpec(
                scenario.spec, (point_trigger(point, probe),), obs=obs
            )
            units.append(
                PlannedUnit(
                    ord=len(units),
                    kind=KIND_KILL,
                    matrix=idx,
                    fingerprint=replay_fingerprint(spec),
                    spec=spec,
                    point=point,
                )
            )

    schedules: List[List[Any]] = []
    if random_cfg is not None and matrices:
        probe0 = matrices[0].probe
        schedules = [
            generate_schedule(probe0, random_cfg, random_cfg.seed + i)
            for i in range(random_cfg.n_schedules)
        ]
        for i, triggers in enumerate(schedules):
            spec = ReplaySpec(matrices[0].spec, tuple(triggers), obs=obs)
            units.append(
                PlannedUnit(
                    ord=len(units),
                    kind=KIND_RANDOM,
                    matrix=0,
                    fingerprint=replay_fingerprint(spec),
                    spec=spec,
                    schedule_index=i,
                )
            )

    if not units:
        raise ChaosError("campaign plan is empty: no kill points enumerated")

    shards = [
        ShardPlan(
            shard_id=_shard_id([units[o].fingerprint for o in ords]),
            index=i,
            unit_ords=ords,
        )
        for i, ords in enumerate(partition(len(units), n_shards))
    ]
    plan = CampaignPlan(
        seed=seed,
        obs=obs,
        methods=methods,
        matrices=matrices,
        schedules=schedules,
        units=units,
        shards=shards,
        fingerprint=_plan_fingerprint(shards, obs, seed),
    )
    return plan
