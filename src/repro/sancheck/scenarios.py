"""Built-in sanitizer scenarios: seeded-bug fixtures and the clean run.

Dynamic analyses need something to run.  This module provides three
deterministic, fast scenarios used both by the test suite and by the
``repro check races`` / ``repro check deadlock`` CLI commands, which treat
them as a self-test pair: the planted bug **must** be detected and the
clean run **must** come back with zero findings, or the detector itself is
broken.

* :func:`run_seeded_race` — two ranks co-resident on one node write the
  same SHM segment with no ordering message between them;
* :func:`run_seeded_deadlock` — a send/recv pair with mismatched tags
  (sender uses tag 1, receiver waits on tag 99);
* :func:`run_clean_selfckpt` — a small self-checkpoint application (the
  paper's protocol) running to completion under any detectors handed in.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sancheck.deadlock import DeadlockDetector
from repro.sancheck.races import RaceDetector
from repro.sim import Cluster, Job, JobResult, Trace


def run_seeded_race(n_ranks: int = 2) -> Tuple[JobResult, RaceDetector]:
    """Deliberately racy: all ranks on one node write one SHM segment with
    no happens-before edge.  The detector must flag it."""

    def app(ctx):
        seg = ctx.shm_create("race.target", 8, exist_ok=True)
        # BUG (on purpose): sibling ranks write concurrently; nothing
        # orders these accesses
        seg.write(float(ctx.rank))
        ctx.elapse(1e-6)
        return float(seg.read()[0])

    cluster = Cluster(1)
    detector = RaceDetector(n_ranks)
    job = Job(cluster, app, n_ranks, ranklist=[0] * n_ranks)
    detector.install(job)
    result = job.run()
    return result, detector


def run_synchronized_shm(n_ranks: int = 2) -> Tuple[JobResult, RaceDetector]:
    """The fixed version of :func:`run_seeded_race`: a message orders the
    two writes, so the detector must stay silent."""

    def app(ctx):
        rank = ctx.world.rank
        if rank == 0:
            seg = ctx.shm_create("sync.target", 8)
            seg.write(1.0)
            ctx.world.send(None, dest=1, tag=7)  # hand the segment over
        else:
            ctx.world.recv(source=0, tag=7)  # happens-before edge
            seg = ctx.shm_attach("sync.target")
            seg.write(2.0)
        return True

    cluster = Cluster(1)
    detector = RaceDetector(n_ranks)
    job = Job(cluster, app, n_ranks, ranklist=[0] * n_ranks)
    detector.install(job)
    result = job.run()
    return result, detector


def run_seeded_deadlock(
    timeout_s: float = 20.0,
) -> Tuple[JobResult, DeadlockDetector]:
    """Deliberately deadlocked: mismatched send/recv tags.  The detector
    must report the cycle (with a stuck-tag diagnosis) and abort the job
    long before the wall-clock safety net fires."""

    def app(ctx):
        comm = ctx.world
        ctx.phase("exchange.begin")
        if comm.rank == 0:
            comm.send(b"payload", dest=1, tag=1)
            comm.recv(source=1, tag=2)
        else:
            # BUG (on purpose): rank 0 sent tag=1, we wait on tag=99
            comm.recv(source=0, tag=99)
            comm.send(b"reply", dest=0, tag=2)
        ctx.phase("exchange.done")
        return True

    cluster = Cluster(2)
    detector = DeadlockDetector()
    trace = Trace()
    job = Job(
        cluster, app, 2, procs_per_node=1, deadlock_timeout_s=timeout_s, trace=trace
    )
    detector.install(job)
    result = job.run()
    return result, detector


def run_clean_selfckpt(
    n_ranks: int = 4,
    group_size: int = 4,
    iters: int = 4,
    ckpt_every: int = 2,
    race: Optional[RaceDetector] = None,
    deadlock: Optional[DeadlockDetector] = None,
) -> Tuple[JobResult, RaceDetector, DeadlockDetector]:
    """A correct self-checkpoint run (the paper's protocol, §3) under both
    detectors; any finding here is a detector false positive — or a real
    simulator regression, which is exactly what CI wants to catch."""
    from repro.ckpt import CheckpointManager

    def app(ctx):
        mgr = CheckpointManager(
            ctx, ctx.world, group_size=group_size, method="self"
        )
        a = mgr.alloc("data", 32)
        mgr.commit()
        report = mgr.try_restore()
        start = report.local["it"] if report else 0
        for it in range(start, iters):
            a += ctx.world.rank + 1
            ctx.compute(1e7)
            if (it + 1) % ckpt_every == 0:
                mgr.local["it"] = it + 1
                mgr.checkpoint()
        return True

    cluster = Cluster(n_ranks)
    race = race or RaceDetector(n_ranks)
    deadlock = deadlock or DeadlockDetector()
    trace = Trace()
    job = Job(cluster, app, n_ranks, procs_per_node=1, trace=trace)
    race.install(job)
    deadlock.install(job)
    result = job.run()
    return result, race, deadlock
