"""Vector clocks over world ranks — the happens-before lattice the race
detector orders events with.

Classic Fidge/Mattern clocks: each rank ``i`` owns component ``i``; local
events tick it, a message receive merges the sender's snapshot, a
collective merges every participant's entry snapshot (a collective is a
full synchronization point in this simulator — clocks join to the slowest
participant — so the merge is exact, not conservative).
"""

from __future__ import annotations

from typing import List, Sequence


class VectorClock:
    """A fixed-width vector clock; mutable, with value-semantics helpers."""

    __slots__ = ("ticks",)

    def __init__(self, n_ranks: int):
        self.ticks: List[int] = [0] * n_ranks

    @classmethod
    def of(cls, ticks: Sequence[int]) -> "VectorClock":
        vc = cls(len(ticks))
        vc.ticks = list(ticks)
        return vc

    def tick(self, rank: int) -> None:
        self.ticks[rank] += 1

    def merge(self, other: "VectorClock") -> None:
        self.ticks = [max(a, b) for a, b in zip(self.ticks, other.ticks)]

    def copy(self) -> "VectorClock":
        return VectorClock.of(self.ticks)

    def __le__(self, other: "VectorClock") -> bool:
        """Happens-before-or-equal (component-wise)."""
        return all(a <= b for a, b in zip(self.ticks, other.ticks))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self.ticks == other.ticks

    def __hash__(self) -> int:  # frozen snapshots are dict keys in tests
        return hash(tuple(self.ticks))

    def concurrent(self, other: "VectorClock") -> bool:
        """Neither ordered before the other — the race condition predicate."""
        return not (self <= other) and not (other <= self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VC{self.ticks}"


def merge_all(clocks: Sequence[VectorClock]) -> VectorClock:
    if not clocks:
        raise ValueError("nothing to merge")
    out = clocks[0].copy()
    for c in clocks[1:]:
        out.merge(c)
    return out
