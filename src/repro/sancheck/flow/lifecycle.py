"""Protocol-lifecycle verdicts over the propagated effect summaries.

The checkpoint protocols' correctness arguments (docs/PROTOCOLS.md) are
phase-discipline arguments: each ``checkpoint()``/``try_restore()``
executes a fixed state machine whose SHM writes are fenced by group
collectives and world barriers.  This module checks the parts of that
discipline that are *statically* decidable on the call graph:

``flow-nondet`` (error)
    A protocol ``checkpoint()``/``try_restore()`` entry point can reach
    unseeded RNG or the wall clock.  A restarted rank replaying that
    path would diverge from the survivors bit-for-bit (paper §5.2).
    Reported once per concrete protocol class, with the witness chain.

``flow-kernel-nondet`` (error)
    An encode/reconstruct kernel (the pure-numpy stripe codecs) can
    reach unseeded RNG or the wall clock.  Checksums must be a pure
    function of the group's buffers.

``flow-kernel-mpi`` / ``flow-kernel-global`` (warning)
    A kernel reaches MPI or mutates module globals — kernels are
    documented pure and the perf harness relies on it.

``lifecycle-premature-write`` (error)
    ``try_restore()`` reaches an SHM write *before* the group status
    exchange that decides the restore path.  Survivor segments are the
    only source of truth at that point; writing first can destroy the
    state the reconstruction needs.

``lifecycle-phase-escape`` (warning)
    A protocol method that mutates SHM but is not reachable from the
    protocol lifecycle (``__init__``/``alloc``/``commit``/
    ``checkpoint``/``try_restore``).  Such a method can violate the
    epoch-flag invariants if called at an arbitrary point.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.sancheck.findings import Finding
from repro.sancheck.flow.callgraph import FunctionNode, ProjectIndex
from repro.sancheck.flow.effects import (
    MPI_COLLECTIVE_METHODS,
    MPI_RECV,
    MPI_RECV_METHODS,
    MPI_SEND,
    MUTATES_GLOBAL,
    MUTATES_SHM,
    RNG_UNSEEDED,
    WALLCLOCK,
)
from repro.sancheck.flow.taint import SummaryMap, Witness

if TYPE_CHECKING:  # pragma: no cover
    from repro.sancheck.flow.driver import FlowConfig

TOOL = "flow"

_NONDET: Tuple[Tuple[str, str], ...] = (
    (RNG_UNSEEDED, "unseeded RNG"),
    (WALLCLOCK, "the wall clock"),
)


def protocol_classes(index: ProjectIndex, base: str) -> List[str]:
    """Every checkpoint-protocol class: descendants of the protocol base
    (transitively, or by raw base name for fixture trees), plus
    *structural* matches — classes defining both ``checkpoint`` and
    ``try_restore`` themselves (``MultiLevelCheckpoint`` and
    ``DiskCheckpoint`` are duck-typed, and a duck-typed protocol is
    exactly the one nominal detection would silently skip)."""
    out = []
    for q in sorted(index.classes):
        if q.split(".")[-1] == base:
            continue
        structural = {"checkpoint", "try_restore"} <= set(
            index.classes[q].methods
        )
        if structural or index.is_descendant_of(q, base):
            out.append(q)
    return out


def kernel_functions(index: ProjectIndex, kernel_modules: Tuple[str, ...]) -> List[str]:
    return sorted(
        q
        for q, fn in index.functions.items()
        if fn.module.split(".")[-1] in kernel_modules
    )


def _entry_findings(
    index: ProjectIndex, summaries: SummaryMap, config: "FlowConfig"
) -> List[Finding]:
    out: List[Finding] = []
    for cqual in protocol_classes(index, config.protocol_base):
        cls = index.classes[cqual]
        for entry in config.lifecycle_entries:
            mqual = index.lookup_method(cqual, entry)
            if mqual is None:
                continue
            fn = index.functions[mqual]
            for effect, label in _NONDET:
                w = summaries.get(mqual, {}).get(effect)
                if w is None:
                    continue
                out.append(
                    Finding(
                        tool=TOOL,
                        rule="flow-nondet",
                        severity="error",
                        message=(
                            f"{cls.name}.{entry}() can reach {label}: "
                            f"{w.describe()}"
                        ),
                        file=fn.file,
                        line=fn.line,
                    )
                )
    return out


def _kernel_findings(
    index: ProjectIndex, summaries: SummaryMap, config: "FlowConfig"
) -> List[Finding]:
    out: List[Finding] = []
    for q in kernel_functions(index, config.kernel_modules):
        fn = index.functions[q]
        summary = summaries.get(q, {})
        for effect, label in _NONDET:
            w = summary.get(effect)
            if w is not None:
                out.append(
                    Finding(
                        tool=TOOL,
                        rule="flow-kernel-nondet",
                        severity="error",
                        message=(
                            f"kernel {fn.name}() can reach {label}: "
                            f"{w.describe()}"
                        ),
                        file=fn.file,
                        line=fn.line,
                    )
                )
        for effect, rule, label in (
            (MPI_SEND, "flow-kernel-mpi", "MPI traffic"),
            (MPI_RECV, "flow-kernel-mpi", "MPI traffic"),
            (MUTATES_GLOBAL, "flow-kernel-global", "module-global mutation"),
        ):
            w = summary.get(effect)
            if w is not None:
                out.append(
                    Finding(
                        tool=TOOL,
                        rule=rule,
                        severity="warning",
                        message=(
                            f"kernel {fn.name}() reaches {label}: "
                            f"{w.describe()}"
                        ),
                        file=fn.file,
                        line=fn.line,
                    )
                )
    # one kernel may trip both the send and recv effect with the same
    # witness — the Report-level dedup collapses identical messages
    return out


def _stmt_lines(stmt: ast.stmt) -> Tuple[int, int]:
    end = getattr(stmt, "end_lineno", None) or stmt.lineno
    return stmt.lineno, end


def _calls_in_range(
    fn: FunctionNode, lo: int, hi: int
) -> List[Tuple[str, int]]:
    return [(q, line) for q, line in fn.calls if lo <= line <= hi]


def _premature_write_findings(
    index: ProjectIndex, summaries: SummaryMap, config: "FlowConfig"
) -> List[Finding]:
    out: List[Finding] = []
    checked: Set[str] = set()
    recv_names = MPI_RECV_METHODS | MPI_COLLECTIVE_METHODS
    for cqual in protocol_classes(index, config.protocol_base):
        mqual = index.lookup_method(cqual, config.restore_entry)
        if mqual is None or mqual in checked:
            continue
        checked.add(mqual)
        fn = index.functions[mqual]
        body = fn.body
        if not isinstance(body, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue

        def stmt_reaches_recv(lo: int, hi: int) -> bool:
            for name, line in fn.method_calls:
                if lo <= line <= hi and name in recv_names:
                    return True
            for q, _line in _calls_in_range(fn, lo, hi):
                if MPI_RECV in summaries.get(q, {}):
                    return True
            return False

        for stmt in body.body:
            lo, hi = _stmt_lines(stmt)
            if stmt_reaches_recv(lo, hi):
                break  # the status exchange: restore decision is made
            direct_writes = [
                line for line in fn.shm_writes if lo <= line <= hi
            ] + [
                line
                for name, line in fn.method_calls
                if lo <= line <= hi and name in ("shm_create", "shm_unlink")
            ]
            for line in sorted(set(direct_writes)):
                out.append(
                    Finding(
                        tool=TOOL,
                        rule="lifecycle-premature-write",
                        severity="error",
                        message=(
                            f"{config.restore_entry}() writes SHM before "
                            "the group status exchange — survivor "
                            "segments are the only recovery source at "
                            "this point"
                        ),
                        file=fn.file,
                        line=line,
                    )
                )
            for q, line in _calls_in_range(fn, lo, hi):
                w = summaries.get(q, {}).get(MUTATES_SHM)
                if w is not None:
                    out.append(
                        Finding(
                            tool=TOOL,
                            rule="lifecycle-premature-write",
                            severity="error",
                            message=(
                                f"{config.restore_entry}() reaches an SHM "
                                "write before the group status exchange: "
                                f"{w.describe()}"
                            ),
                            file=fn.file,
                            line=line,
                        )
                    )
    return out


def _phase_escape_findings(
    index: ProjectIndex, summaries: SummaryMap, config: "FlowConfig"
) -> List[Finding]:
    out: List[Finding] = []
    for cqual in protocol_classes(index, config.protocol_base):
        cls = index.classes[cqual]
        reachable: Set[str] = set()
        frontier: List[str] = []
        for root in config.lifecycle_roots:
            frontier.extend(index.dispatch_targets(cqual, root))
        while frontier:
            q = frontier.pop()
            if q in reachable:
                continue
            reachable.add(q)
            fn = index.functions.get(q)
            if fn is not None:
                frontier.extend(c for c, _line in fn.calls)
        for mname in sorted(cls.methods):
            mqual = cls.methods[mname]
            if mqual in reachable or mname in config.lifecycle_roots:
                continue
            w: Optional[Witness] = summaries.get(mqual, {}).get(MUTATES_SHM)
            if w is None:
                continue
            fn = index.functions[mqual]
            out.append(
                Finding(
                    tool=TOOL,
                    rule="lifecycle-phase-escape",
                    severity="warning",
                    message=(
                        f"{cls.name}.{mname}() mutates SHM but is not "
                        "reachable from the protocol lifecycle "
                        f"({'/'.join(config.lifecycle_roots)}) — phase "
                        f"discipline cannot be guaranteed: {w.describe()}"
                    ),
                    file=fn.file,
                    line=fn.line,
                )
            )
    return out


def lifecycle_findings(
    index: ProjectIndex, summaries: SummaryMap, config: "FlowConfig"
) -> List[Finding]:
    out: List[Finding] = []
    out.extend(_entry_findings(index, summaries, config))
    out.extend(_kernel_findings(index, summaries, config))
    out.extend(_premature_write_findings(index, summaries, config))
    out.extend(_phase_escape_findings(index, summaries, config))
    return out


__all__ = [
    "lifecycle_findings",
    "protocol_classes",
    "kernel_functions",
    "TOOL",
]
