"""Top-level driver: paths in, deterministic findings out.

``analyze_paths`` is what ``repro check --deep`` (and the test fixtures)
call: build the project index, extract intrinsic effects, propagate to a
fixpoint, run the lifecycle checker, and return findings sorted by
``(file, line, rule, message)`` so two consecutive runs are
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.sancheck.findings import Finding
from repro.sancheck.flow.callgraph import ProjectIndex, build_index
from repro.sancheck.flow.effects import build_intrinsics
from repro.sancheck.flow.lifecycle import lifecycle_findings
from repro.sancheck.flow.taint import SummaryMap, propagate


@dataclass(frozen=True)
class FlowConfig:
    """Knobs of the whole-program analysis (defaults fit ``src/repro``)."""

    #: modules whose wall-clock reads are sanctioned (the MPI deadlock
    #: safety net and the progress reporter's throttle)
    wallclock_allow: Tuple[str, ...] = ("repro.sim.mpi", "repro.par.progress")
    #: modules that own RNG construction
    rng_allow: Tuple[str, ...] = ("repro.util.rng",)
    #: bare class name every checkpoint protocol descends from
    protocol_base: str = "Checkpointer"
    #: protocol entry points checked for nondeterministic effects
    lifecycle_entries: Tuple[str, ...] = ("checkpoint", "try_restore")
    #: the restore entry checked for premature SHM writes
    restore_entry: str = "try_restore"
    #: methods whose call closure constitutes the sanctioned lifecycle
    lifecycle_roots: Tuple[str, ...] = (
        "__init__",
        "alloc",
        "commit",
        "checkpoint",
        "try_restore",
    )
    #: last path components of the pure encode/reconstruct kernel modules
    kernel_modules: Tuple[str, ...] = ("stripes", "stripes_rs", "raid6")


def analyze_index(index: ProjectIndex, config: FlowConfig) -> List[Finding]:
    intrinsics = build_intrinsics(
        index.functions, config.wallclock_allow, config.rng_allow
    )
    summaries: SummaryMap = propagate(index, intrinsics)
    findings = lifecycle_findings(index, summaries, config)
    return sorted(findings, key=Finding.sort_key)


def analyze_paths(
    paths: Sequence[Union[str, Path]], config: FlowConfig = FlowConfig()
) -> List[Finding]:
    """Run the whole-program analysis over files/directories."""
    index = build_index([Path(p) for p in paths])
    return analyze_index(index, config)
