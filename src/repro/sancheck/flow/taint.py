"""Interprocedural effect propagation to a fixpoint.

A function's **summary** is its intrinsic effects unioned with every
callee's summary.  Because the lattice is a finite powerset and the
transfer function is monotone union, iterating to a fixpoint terminates;
we iterate over functions in sorted order so the result — including the
witness *chains* — is deterministic, independent of dict insertion order
or worker count.

Each propagated effect keeps one witness chain (first one discovered
under the sorted iteration): the path of qualnames from the summarized
function down to the function whose own body introduces the effect, plus
the concrete site.  Verdict messages print these chains, which is what
makes a whole-program finding actionable ("``checkpoint`` reaches
``random.random()`` via ``_helper``") instead of a bare boolean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sancheck.flow.callgraph import ProjectIndex
from repro.sancheck.flow.effects import IntrinsicMap


@dataclass(frozen=True)
class Witness:
    """How an effect reaches a function: the call chain and ground site."""

    chain: Tuple[str, ...]  # qualnames, self first, intrinsic holder last
    site: str
    file: str
    line: int

    def describe(self, strip_prefix: str = "repro.") -> str:
        names = [
            c[len(strip_prefix):] if c.startswith(strip_prefix) else c
            for c in self.chain
        ]
        hops = " -> ".join(names)
        return f"{hops} -> {self.site} ({self.file}:{self.line})"


#: function qualname -> {effect: Witness}
SummaryMap = Dict[str, Dict[str, Witness]]


def propagate(index: ProjectIndex, intrinsics: IntrinsicMap) -> SummaryMap:
    """Union effects up the call graph until nothing changes."""
    summaries: SummaryMap = {}
    for q in sorted(index.functions):
        fn = index.functions[q]
        summaries[q] = {
            effect: Witness(
                chain=(q,), site=intr.site, file=fn.file, line=intr.line
            )
            for effect, intr in sorted(intrinsics.get(q, {}).items())
        }

    order = sorted(index.functions)
    callees: Dict[str, List[str]] = {
        q: sorted({c for c, _line in index.functions[q].calls})
        for q in order
    }
    changed = True
    while changed:
        changed = False
        for q in order:
            mine = summaries[q]
            for callee in callees[q]:
                for effect, w in summaries.get(callee, {}).items():
                    if effect in mine:
                        continue
                    if q in w.chain:
                        # recursion: adopt the effect, keep the short chain
                        mine[effect] = Witness(
                            chain=w.chain, site=w.site, file=w.file, line=w.line
                        )
                    else:
                        mine[effect] = Witness(
                            chain=(q,) + w.chain,
                            site=w.site,
                            file=w.file,
                            line=w.line,
                        )
                    changed = True
    return summaries


def reaches(summaries: SummaryMap, qualname: str, effect: str) -> bool:
    return effect in summaries.get(qualname, {})


def witness_for(
    summaries: SummaryMap, qualname: str, effect: str
) -> Witness:
    return summaries[qualname][effect]
