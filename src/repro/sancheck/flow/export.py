"""Finding exporters shared by every sancheck analysis.

Two machine formats ride next to the ASCII report:

* **JSONL** — one JSON object per finding, fixed key order, sorted by
  the canonical finding key; byte-stable across runs, trivially
  diffable, and the same shape the baseline file stores.
* **SARIF 2.1.0** — the static-analysis interchange format GitHub code
  scanning ingests; the ``check-deep`` CI job uploads it as an artifact.

Both exporters accept findings from *any* sancheck tool (simlint, flow,
race, deadlock) — the rule vocabulary is namespaced ``tool/rule``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

from repro.sancheck.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-sancheck"

_SARIF_LEVEL = {"error": "error", "warning": "warning", "note": "note"}


def finding_to_dict(f: Finding) -> Dict[str, object]:
    """Stable JSON shape of one finding (fixed key order)."""
    out: Dict[str, object] = {
        "tool": f.tool,
        "rule": f.rule,
        "severity": f.severity,
        "file": f.file,
        "line": f.line,
        "message": f.message,
    }
    if f.ranks:
        out["ranks"] = list(f.ranks)
    if f.clock:
        out["clock"] = f.clock
    if f.detail:
        out["detail"] = f.detail
    return out


def to_jsonl(findings: Sequence[Finding]) -> str:
    lines = [
        json.dumps(finding_to_dict(f), sort_keys=False)
        for f in sorted(findings, key=Finding.sort_key)
    ]
    return "".join(line + "\n" for line in lines)


def to_sarif(findings: Sequence[Finding], tool_version: str = "1.0.0") -> dict:
    ordered = sorted(findings, key=Finding.sort_key)
    rule_ids: List[str] = []
    for f in ordered:
        rid = f"{f.tool}/{f.rule}"
        if rid not in rule_ids:
            rule_ids.append(rid)
    results = []
    for f in ordered:
        result: Dict[str, object] = {
            "ruleId": f"{f.tool}/{f.rule}",
            "level": _SARIF_LEVEL.get(f.severity, "error"),
            "message": {"text": f.message},
        }
        if f.file:
            result["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.file},
                        "region": {"startLine": max(f.line, 1)},
                    }
                }
            ]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "informationUri": "https://example.invalid/repro",
                        "rules": [{"id": rid} for rid in rule_ids],
                    }
                },
                "results": results,
            }
        ],
    }


def write_jsonl(path: Path, findings: Sequence[Finding]) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(to_jsonl(findings), encoding="utf-8")


def write_sarif(
    path: Path, findings: Sequence[Finding], tool_version: str = "1.0.0"
) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(
        json.dumps(to_sarif(findings, tool_version), indent=2) + "\n",
        encoding="utf-8",
    )
