"""``repro.sancheck.flow`` — whole-program checkpoint-consistency verifier.

Where :mod:`repro.sancheck.simlint` judges each file in isolation, this
package parses the *entire* source tree into a project-wide module/call
graph, infers a per-function **effect summary** (reads unseeded RNG,
reads the wall clock, mutates SHM, mutates module globals, sends/recvs
MPI, allocates), propagates the summaries interprocedurally to a
fixpoint, and then checks the checkpoint-protocol **lifecycle** against
the effect lattice:

* no nondeterministic effect (unseeded RNG, wall clock) may be reachable
  from any protocol ``checkpoint()``/``try_restore()`` entry point or
  from any encode/reconstruct kernel — restarted ranks must regenerate
  bit-identical state (paper §5.2);
* ``try_restore()`` must not reach an SHM write before the group status
  exchange that decides the restore path — a premature write can destroy
  the very survivor state the reconstruction needs;
* checkpoint-buffer (SHM) mutation must stay inside the protocol
  lifecycle — a helper that scribbles on segments outside
  ``checkpoint()``/``try_restore()``/``commit()`` breaks the phase
  discipline the recovery-decision invariants assume.

Entry point: :func:`analyze_paths` (exposed as ``repro check --deep``).
Pre-existing findings are tracked in a committed baseline
(:mod:`repro.sancheck.flow.baseline`); reports export to SARIF and JSONL
(:mod:`repro.sancheck.flow.export`).
"""

from repro.sancheck.flow.baseline import (
    BASELINE_SCHEMA,
    default_baseline_path,
    fingerprint,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.sancheck.flow.callgraph import FunctionNode, ProjectIndex, build_index
from repro.sancheck.flow.driver import FlowConfig, analyze_index, analyze_paths
from repro.sancheck.flow.effects import (
    ALL_EFFECTS,
    ALLOCATES,
    MPI_RECV,
    MPI_SEND,
    MUTATES_GLOBAL,
    MUTATES_SHM,
    RNG_SEEDED,
    RNG_UNSEEDED,
    WALLCLOCK,
)
from repro.sancheck.flow.export import to_jsonl, to_sarif, write_jsonl, write_sarif
from repro.sancheck.flow.taint import Witness, propagate

__all__ = [
    "analyze_paths",
    "analyze_index",
    "FlowConfig",
    "build_index",
    "ProjectIndex",
    "FunctionNode",
    "propagate",
    "Witness",
    "ALL_EFFECTS",
    "RNG_UNSEEDED",
    "RNG_SEEDED",
    "WALLCLOCK",
    "MUTATES_SHM",
    "MUTATES_GLOBAL",
    "MPI_SEND",
    "MPI_RECV",
    "ALLOCATES",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "split_by_baseline",
    "default_baseline_path",
    "BASELINE_SCHEMA",
    "to_sarif",
    "to_jsonl",
    "write_sarif",
    "write_jsonl",
]
