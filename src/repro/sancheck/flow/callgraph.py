"""Project-wide module/call graph over the ``repro`` source tree.

The graph is built purely from source text — nothing is imported — so
the analyzer can run over fixture packages and broken trees alike.  Call
resolution is deliberately *sound-ish* rather than precise:

* ``from``/``import`` aliases resolve names to canonical dotted paths
  (the same machinery simlint uses);
* ``self.method(...)`` resolves through the class hierarchy (nearest
  definition in the MRO **plus** every subclass override — class
  hierarchy analysis, so dynamic dispatch over protocol subclasses is
  covered);
* ``self.attr.method(...)`` resolves through a per-class attribute type
  map harvested from ``self.attr = ClassName(...)`` assignments;
* ``var = ClassName(...); var.method(...)`` resolves through local
  variable types;
* everything else is recorded as an unresolved external/method call and
  classified by name at the effect layer.

Nested functions and lambdas are inlined into their enclosing function:
their calls and writes belong to the parent summary, which matches how
the closures in this codebase are used (built and invoked locally, e.g.
the ``compute`` callbacks handed to ``custom_collective``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sancheck.simlint import module_name_for

#: sentinel for calls on SHM segment stores (create/attach/unlink)
SHM_METHODS = frozenset({"shm_create", "shm_attach", "shm_unlink"})


def rel_file(path: Path, root: Path) -> str:
    """Stable, machine-independent display path for a source file.

    Files inside a ``repro`` package render anchored at that package
    (``repro/ckpt/self_ckpt.py``); anything else renders relative to the
    scanned root, prefixed with the root directory's name, so fixture
    trees get deterministic paths too.
    """
    parts = path.parts
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    try:
        rel = path.resolve().relative_to(root.resolve())
        return "/".join((root.name,) + rel.parts)
    except ValueError:
        return "/".join(parts[-2:]) if len(parts) >= 2 else path.name


class _Imports:
    """Alias table mapping local names to canonical dotted paths."""

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def scan(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    self.aliases[a.asname or a.name.split(".")[0]] = (
                        a.name if a.asname else a.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue
                for a in node.names:
                    if a.name != "*":
                        self.aliases[a.asname or a.name] = f"{node.module}.{a.name}"

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted path of an attribute/name chain, or None."""
        attrs: List[str] = []
        while isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        return ".".join([base] + list(reversed(attrs)))


@dataclass
class FunctionNode:
    """One analyzed function/method plus everything the later passes need."""

    qualname: str
    module: str
    cls: Optional[str]  # owning class qualname, if a method
    name: str
    file: str
    line: int
    #: resolved project callees as (callee qualname, call lineno)
    calls: List[Tuple[str, int]] = field(default_factory=list)
    #: unresolved external calls as (dotted path, lineno, has_any_args)
    external: List[Tuple[str, int, bool]] = field(default_factory=list)
    #: unresolved attribute calls as (terminal method name, lineno)
    method_calls: List[Tuple[str, int]] = field(default_factory=list)
    #: linenos of writes through SHM-backed attributes/aliases
    shm_writes: List[int] = field(default_factory=list)
    #: (global name, lineno) stores following a ``global`` declaration
    global_writes: List[Tuple[str, int]] = field(default_factory=list)
    body: Optional[ast.AST] = field(default=None, repr=False)


@dataclass
class ClassNode:
    qualname: str
    module: str
    name: str
    file: str
    line: int
    #: raw dotted base paths as written (import-resolved, maybe unresolvable)
    raw_bases: Tuple[str, ...] = ()
    #: resolved project base class qualnames
    bases: Tuple[str, ...] = ()
    #: method name -> FunctionNode qualname
    methods: Dict[str, str] = field(default_factory=dict)
    #: ``self.attr`` -> project class qualname (from ``self.a = Cls(...)``)
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attributes known to alias SHM segment memory
    shm_attrs: Set[str] = field(default_factory=set)


@dataclass
class ProjectIndex:
    """Everything the effect/taint/lifecycle passes consume."""

    functions: Dict[str, FunctionNode] = field(default_factory=dict)
    classes: Dict[str, ClassNode] = field(default_factory=dict)
    #: class qualname -> direct subclasses
    subclasses: Dict[str, Set[str]] = field(default_factory=dict)
    files: List[str] = field(default_factory=list)

    # -- hierarchy helpers ------------------------------------------------------
    def mro(self, cls: str) -> List[str]:
        """Linearized project ancestry (DFS, duplicates removed)."""
        out: List[str] = []
        stack = [cls]
        seen: Set[str] = set()
        while stack:
            c = stack.pop(0)
            if c in seen or c not in self.classes:
                continue
            seen.add(c)
            out.append(c)
            stack = list(self.classes[c].bases) + stack
        return out

    def all_subclasses(self, cls: str) -> List[str]:
        out: List[str] = []
        stack = sorted(self.subclasses.get(cls, ()))
        while stack:
            c = stack.pop(0)
            if c in out:
                continue
            out.append(c)
            stack.extend(sorted(self.subclasses.get(c, ())))
        return out

    def lookup_method(self, cls: str, name: str) -> Optional[str]:
        """Nearest definition of ``name`` in ``cls``'s project MRO."""
        for c in self.mro(cls):
            q = self.classes[c].methods.get(name)
            if q is not None:
                return q
        return None

    def dispatch_targets(self, cls: str, name: str) -> List[str]:
        """CHA: the MRO definition plus every subclass override."""
        out: List[str] = []
        base = self.lookup_method(cls, name)
        if base is not None:
            out.append(base)
        for sub in self.all_subclasses(cls):
            q = self.classes[sub].methods.get(name)
            if q is not None and q not in out:
                out.append(q)
        return out

    def is_descendant_of(self, cls: str, base_name: str) -> bool:
        """True when ``cls`` descends (transitively) from any class whose
        bare name is ``base_name`` — including *unresolved* raw bases, so
        fixture trees that subclass ``Checkpointer`` without shipping it
        still register as protocol classes."""
        for c in self.mro(cls):
            node = self.classes.get(c)
            if node is None:
                continue
            for raw in node.raw_bases:
                if raw.split(".")[-1] == base_name:
                    return True
        return cls.split(".")[-1] == base_name


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    out: List[Path] = []
    for p in paths:
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
    return out


def _contains_shm_source(node: ast.AST) -> bool:
    """True when an expression subtree manufactures SHM-backed memory."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in ("shm_create", "shm_attach"):
            return True
        if isinstance(sub, ast.Name) and sub.id in ("shm_create", "shm_attach"):
            return True
    return False


def _returns_shm(fn_node: ast.AST) -> bool:
    """Does this function return SHM-backed memory?  Tracks locals bound
    to ``shm_create``/``shm_attach`` results (``seg = ctx.shm_create(...);
    return seg.array`` is the idiom everywhere)."""
    shm_locals: Set[str] = set()
    for _ in range(2):
        for sub in ast.walk(fn_node):
            if isinstance(sub, ast.Assign):
                tainted = _contains_shm_source(sub.value) or any(
                    isinstance(n, ast.Name) and n.id in shm_locals
                    for n in ast.walk(sub.value)
                )
                if tainted:
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            shm_locals.add(target.id)
    for sub in ast.walk(fn_node):
        if isinstance(sub, ast.Return) and sub.value is not None:
            if _contains_shm_source(sub.value) or any(
                isinstance(n, ast.Name) and n.id in shm_locals
                for n in ast.walk(sub.value)
            ):
                return True
    return False


class _FunctionScanner(ast.NodeVisitor):
    """One pass over a function body collecting calls and writes.

    Nested function/lambda bodies are visited in place (see module
    docstring); nested *class* bodies are skipped — their methods are
    indexed separately.
    """

    def __init__(
        self,
        index: "ProjectIndex",
        imports: _Imports,
        module: str,
        module_functions: Dict[str, str],
        module_classes: Dict[str, str],
        owner: Optional[ClassNode],
        fn: FunctionNode,
        self_name: Optional[str],
        shm_returning: Optional[Set[str]] = None,
    ) -> None:
        self.index = index
        self.imports = imports
        self.module = module
        self.module_functions = module_functions
        self.module_classes = module_classes
        self.owner = owner
        self.fn = fn
        self.self_name = self_name
        self.shm_returning = shm_returning or set()
        #: local var -> project class qualname
        self.var_types: Dict[str, str] = {}
        #: local names aliasing SHM-backed memory
        self.shm_vars: Set[str] = set()
        self.globals_declared: Set[str] = set()

    # -- resolution helpers -----------------------------------------------------
    def _resolve_class(self, dotted: Optional[str]) -> Optional[str]:
        if dotted is None:
            return None
        if dotted in self.index.classes:
            return dotted
        if dotted in self.module_classes:
            return self.module_classes[dotted]
        last = dotted.split(".")[-1]
        candidates = [
            q for q, c in self.index.classes.items() if c.name == last
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _self_attr(self, node: ast.expr) -> Optional[str]:
        """Attribute name when ``node`` is exactly ``self.<attr>``."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and self.self_name is not None
            and node.value.id == self.self_name
        ):
            return node.attr
        return None

    def _is_shm_expr(self, node: ast.expr) -> bool:
        """Does this expression read SHM-backed memory?"""
        if _contains_shm_source(node):
            return True
        for sub in ast.walk(node):
            attr = self._self_attr(sub) if isinstance(sub, ast.expr) else None
            if (
                attr is not None
                and self.owner is not None
                and attr in self.owner.shm_attrs
            ):
                return True
            if isinstance(sub, ast.Name) and sub.id in self.shm_vars:
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and self._self_attr(sub.func) is not None
                and self.owner is not None
            ):
                targets = self.index.dispatch_targets(
                    self.owner.qualname, sub.func.attr
                )
                if any(t in self.shm_returning for t in targets):
                    return True
        return False

    def _record_shm_write(self, lineno: int) -> None:
        self.fn.shm_writes.append(lineno)

    # -- statements -------------------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        self.globals_declared.update(node.names)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # nested classes are indexed on their own

    def _bind(self, name: str, value: ast.expr, lineno: int) -> None:
        dotted = self.imports.resolve(value.func) if isinstance(value, ast.Call) else None
        cls = self._resolve_class(dotted) if dotted else None
        if cls is not None:
            self.var_types[name] = cls
        else:
            self.var_types.pop(name, None)
        if self._is_shm_expr(value):
            self.shm_vars.add(name)
        else:
            self.shm_vars.discard(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_store(target, node.value, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_store(node.target, node.value, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_write_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name) and self._is_shm_expr(node.iter):
            self.shm_vars.add(node.target.id)
        self.generic_visit(node)

    def _handle_store(self, target: ast.expr, value: ast.expr, lineno: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self.fn.global_writes.append((target.id, lineno))
            self._bind(target.id, value, lineno)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    self.var_types.pop(elt.id, None)
                    if self._is_shm_expr(value):
                        self.shm_vars.add(elt.id)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self._handle_write_target(target, lineno)

    def _handle_write_target(self, target: ast.expr, lineno: int) -> None:
        """A store through a subscript/attribute — SHM write when the
        base aliases segment memory."""
        base = target.value if isinstance(target, ast.Subscript) else target
        if isinstance(target, ast.Subscript) and self._is_shm_expr(base):
            self._record_shm_write(lineno)
        elif isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self.fn.global_writes.append((target.id, lineno))
            if target.id in self.shm_vars:
                self._record_shm_write(lineno)

    # -- calls ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        has_args = bool(node.args or node.keywords)
        lineno = node.lineno
        func = node.func
        resolved = False

        if isinstance(func, ast.Name):
            dotted = self.imports.resolve(func)
            resolved = self._resolve_plain(dotted, lineno, has_args)
        elif isinstance(func, ast.Attribute):
            resolved = self._resolve_attribute(func, lineno, has_args)
        if not resolved and isinstance(func, ast.Attribute):
            root = func.value
            while isinstance(root, ast.Attribute):
                root = root.value
            dotted = self.imports.resolve(func)
            if (
                dotted is not None
                and isinstance(root, ast.Name)
                and root.id in self.imports.aliases
            ):
                # the receiver chain is rooted in an imported module
                # (e.g. ``numpy.bitwise_xor.reduce``): a known library
                # call, not a method on an unresolved comm/shm object —
                # classifying it by terminal name would misread ufunc
                # ``.reduce`` as an MPI collective
                self.fn.external.append((dotted, lineno, has_args))
            else:
                self.fn.method_calls.append((func.attr, lineno))
                if dotted is not None:
                    self.fn.external.append((dotted, lineno, has_args))
        elif not resolved and isinstance(func, ast.Name):
            dotted = self.imports.resolve(func)
            if dotted is not None:
                self.fn.external.append((dotted, lineno, has_args))
        self.generic_visit(node)

    def _add_project_call(self, qual: str, lineno: int) -> None:
        self.fn.calls.append((qual, lineno))

    def _resolve_plain(
        self, dotted: Optional[str], lineno: int, has_args: bool
    ) -> bool:
        """Resolve a bare-name (or from-imported) call."""
        if dotted is None:
            return False
        if dotted in self.index.functions:
            self._add_project_call(dotted, lineno)
            return True
        if dotted in self.module_functions:
            self._add_project_call(self.module_functions[dotted], lineno)
            return True
        cls = self._resolve_class(dotted)
        if cls is not None:
            init = self.index.lookup_method(cls, "__init__")
            if init is not None:
                self._add_project_call(init, lineno)
            return True
        return False

    def _resolve_attribute(
        self, func: ast.Attribute, lineno: int, has_args: bool
    ) -> bool:
        """Resolve ``a.b.c(...)`` forms."""
        # self.method(...)
        attr = self._self_attr(func)
        if attr is not None and self.owner is not None:
            targets = self.index.dispatch_targets(self.owner.qualname, attr)
            if targets:
                for t in targets:
                    self._add_project_call(t, lineno)
                return True
            # self.attr where attr is a typed instance attribute used as
            # a callable — uncommon; fall through to method-name record
            return False
        # super().method(...) — resolve past the defining class in the MRO
        if (
            isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and self.owner is not None
        ):
            for c in self.index.mro(self.owner.qualname)[1:]:
                target = self.index.classes[c].methods.get(func.attr)
                if target is not None:
                    self._add_project_call(target, lineno)
                    return True
            return False
        # self.attr.method(...) via the attribute type map
        if (
            isinstance(func.value, ast.Attribute)
            and self.owner is not None
        ):
            inner = self._self_attr(func.value)
            if inner is not None and inner in self.owner.attr_types:
                cls = self.owner.attr_types[inner]
                targets = self.index.dispatch_targets(cls, func.attr)
                if targets:
                    for t in targets:
                        self._add_project_call(t, lineno)
                    return True
        # var.method(...) via local variable types
        if isinstance(func.value, ast.Name) and func.value.id in self.var_types:
            cls = self.var_types[func.value.id]
            targets = self.index.dispatch_targets(cls, func.attr)
            if targets:
                for t in targets:
                    self._add_project_call(t, lineno)
                return True
        # module-qualified project call: pkg.func(...) / Cls.method(...)
        dotted = self.imports.resolve(func)
        if dotted is not None:
            if dotted in self.index.functions:
                self._add_project_call(dotted, lineno)
                return True
            head, _, tail = dotted.rpartition(".")
            cls = self._resolve_class(head) if head else None
            if cls is not None:
                target = self.index.lookup_method(cls, tail)
                if target is not None:
                    self._add_project_call(target, lineno)
                    return True
        return False


def build_index(paths: Sequence[Path]) -> ProjectIndex:
    """Parse every ``*.py`` under ``paths`` into a :class:`ProjectIndex`."""
    paths = [Path(p) for p in paths]
    root = paths[0] if paths and paths[0].is_dir() else Path(".")
    index = ProjectIndex()
    parsed: List[Tuple[str, str, ast.Module, _Imports]] = []

    # pass 1: modules, classes, functions
    for path in iter_python_files(paths):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            continue  # simlint reports syntax errors; the graph skips the file
        module = module_name_for(path)
        file = rel_file(path, root)
        index.files.append(file)
        imports = _Imports()
        imports.scan(tree)
        parsed.append((module, file, tree, imports))

        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module}.{stmt.name}"
                index.functions[qual] = FunctionNode(
                    qualname=qual,
                    module=module,
                    cls=None,
                    name=stmt.name,
                    file=file,
                    line=stmt.lineno,
                    body=stmt,
                )
            elif isinstance(stmt, ast.ClassDef):
                cqual = f"{module}.{stmt.name}"
                raw_bases = tuple(
                    b for b in (imports.resolve(base) for base in stmt.bases) if b
                )
                cnode = ClassNode(
                    qualname=cqual,
                    module=module,
                    name=stmt.name,
                    file=file,
                    line=stmt.lineno,
                    raw_bases=raw_bases,
                )
                index.classes[cqual] = cnode
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mqual = f"{cqual}.{sub.name}"
                        cnode.methods[sub.name] = mqual
                        index.functions[mqual] = FunctionNode(
                            qualname=mqual,
                            module=module,
                            cls=cqual,
                            name=sub.name,
                            file=file,
                            line=sub.lineno,
                            body=sub,
                        )

    # pass 2: resolve bases, subclass map, attribute types, SHM attributes
    for cqual in sorted(index.classes):
        cnode = index.classes[cqual]
        resolved: List[str] = []
        for raw in cnode.raw_bases:
            target: Optional[str] = None
            if raw in index.classes:
                target = raw
            else:
                last = raw.split(".")[-1]
                cands = [q for q, c in index.classes.items() if c.name == last]
                if len(cands) == 1:
                    target = cands[0]
            if target is not None and target != cqual:
                resolved.append(target)
                index.subclasses.setdefault(target, set()).add(cqual)
        cnode.bases = tuple(resolved)

    shm_returning = {
        q
        for q, fn in index.functions.items()
        if fn.body is not None and _returns_shm(fn.body)
    }
    # Two rounds: round 1 harvests direct `self.x = shm_create(...)` forms;
    # round 2 sees one-hop helpers (`self._ctrl = self._make_ctrl()`,
    # `self._arrays[k] = self._alloc_array(...)`) and methods that return
    # an SHM attribute discovered in round 1.
    for _ in range(2):
        for cqual in sorted(index.classes):
            cnode = index.classes[cqual]
            imports = _imports_for(parsed, cnode.module)
            for mname in sorted(cnode.methods):
                fn = index.functions[cnode.methods[mname]]
                if fn.body is not None:
                    _harvest_class_attrs(cnode, fn, index, imports, shm_returning)
        # inherit SHM attributes and attribute types down the hierarchy
        for cqual in sorted(index.classes):
            cnode = index.classes[cqual]
            for anc in index.mro(cqual)[1:]:
                cnode.shm_attrs |= index.classes[anc].shm_attrs
                for k, v in index.classes[anc].attr_types.items():
                    cnode.attr_types.setdefault(k, v)
        # methods returning self.<shm attr> also manufacture SHM aliases
        for q in sorted(index.functions):
            fn = index.functions[q]
            owner = index.classes.get(fn.cls) if fn.cls else None
            if fn.body is None or owner is None or q in shm_returning:
                continue
            self_name = _first_arg_name(fn.body)
            for sub in ast.walk(fn.body):
                if isinstance(sub, ast.Return) and sub.value is not None:
                    for n in ast.walk(sub.value):
                        if (
                            isinstance(n, ast.Attribute)
                            and isinstance(n.value, ast.Name)
                            and n.value.id == self_name
                            and n.attr in owner.shm_attrs
                        ):
                            shm_returning.add(q)

    # pass 3: per-function call/write scan
    for module, file, tree, imports in parsed:
        module_functions = {
            fn.name: q
            for q, fn in index.functions.items()
            if fn.module == module and fn.cls is None
        }
        module_classes = {
            c.name: q for q, c in index.classes.items() if c.module == module
        }
        for q in sorted(index.functions):
            fn = index.functions[q]
            if fn.module != module or fn.body is None:
                continue
            owner = index.classes.get(fn.cls) if fn.cls else None
            self_name = _first_arg_name(fn.body) if owner is not None else None
            scanner = _FunctionScanner(
                index,
                imports,
                module,
                module_functions,
                module_classes,
                owner,
                fn,
                self_name,
                shm_returning,
            )
            assert isinstance(fn.body, (ast.FunctionDef, ast.AsyncFunctionDef))
            for default in list(fn.body.args.defaults) + [
                d for d in fn.body.args.kw_defaults if d is not None
            ]:
                scanner.visit(default)
            for stmt in fn.body.body:
                scanner.visit(stmt)
    return index


def _first_arg_name(fn_node: ast.AST) -> Optional[str]:
    if isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = fn_node.args
        ordered = list(args.posonlyargs) + list(args.args)
        if ordered:
            return ordered[0].arg
    return None


def _calls_shm_returning(
    value: ast.expr,
    self_name: Optional[str],
    cnode: ClassNode,
    index: ProjectIndex,
    shm_returning: Set[str],
) -> bool:
    """``self.attr = self._make_ctrl()`` — one interprocedural hop to
    methods whose body returns SHM-backed memory."""
    for node in ast.walk(value):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        base = node.func.value
        if not (
            isinstance(base, ast.Name)
            and self_name is not None
            and base.id == self_name
        ):
            continue
        for target in index.dispatch_targets(cnode.qualname, node.func.attr):
            if target in shm_returning:
                return True
    return False


def _class_for(dotted: Optional[str], index: ProjectIndex) -> Optional[str]:
    if dotted is None:
        return None
    if dotted in index.classes:
        return dotted
    last = dotted.split(".")[-1]
    cands = [q for q, c in index.classes.items() if c.name == last]
    return cands[0] if len(cands) == 1 else None


def _harvest_class_attrs(
    cnode: ClassNode,
    fn: FunctionNode,
    index: ProjectIndex,
    imports: _Imports,
    shm_returning: Set[str],
) -> None:
    """Scan one method body for ``self.attr = ...`` bindings, recording
    attribute types and SHM-backed attributes (including container forms
    like ``self._arrays[name] = arr`` with ``arr`` SHM-aliased locally)."""
    maybe_self = _first_arg_name(fn.body) if fn.body is not None else None
    if fn.body is None or maybe_self is None:
        return
    self_name: str = maybe_self
    shm_locals: Set[str] = set()

    def value_is_shm(value: ast.expr) -> bool:
        if _contains_shm_source(value):
            return True
        if _calls_shm_returning(value, self_name, cnode, index, shm_returning):
            return True
        for n in ast.walk(value):
            if isinstance(n, ast.Name) and n.id in shm_locals:
                return True
            if (
                isinstance(n, ast.Attribute)
                and isinstance(n.value, ast.Name)
                and n.value.id == self_name
                and n.attr in cnode.shm_attrs
            ):
                return True
        return False

    # two local iterations: a local bound before its use site settles
    for _ in range(2):
        for node in ast.walk(fn.body):
            if not isinstance(node, ast.Assign):
                continue
            is_shm = value_is_shm(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name) and is_shm:
                    shm_locals.add(target.id)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name
                ):
                    if is_shm:
                        cnode.shm_attrs.add(target.attr)
                    if isinstance(node.value, ast.Call):
                        cls = _class_for(
                            imports.resolve(node.value.func), index
                        )
                        if cls is not None:
                            cnode.attr_types.setdefault(target.attr, cls)
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and isinstance(target.value.value, ast.Name)
                    and target.value.value.id == self_name
                    and is_shm
                ):
                    cnode.shm_attrs.add(target.value.attr)


def _imports_for(
    parsed: List[Tuple[str, str, ast.Module, _Imports]], module: str
) -> _Imports:
    for m, _f, _t, imports in parsed:
        if m == module:
            return imports
    return _Imports()
