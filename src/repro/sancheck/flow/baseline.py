"""Committed-baseline bookkeeping for static findings.

A whole-program analyzer lands on a tree with history: pre-existing
violations should not fail CI on day one, but *new* ones must.  The
baseline file (``benchmarks/sancheck_baseline.json``) records a stable
fingerprint per accepted finding; ``repro check --deep`` subtracts
baselined findings from the report and ``--update-baseline`` rewrites
the file from the current tree.

Fingerprints hash ``(file, tool, rule, message)`` — deliberately *not*
the line number, so unrelated edits that shift a finding a few lines do
not churn the baseline.  File paths are already machine-independent
(``repro/...``-anchored, see :func:`repro.sancheck.flow.callgraph.rel_file`).
The file is written with sorted entries, fixed key order and a trailing
newline: regenerating it on an unchanged tree is a byte-level no-op.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sancheck.findings import Finding

BASELINE_SCHEMA = 1
DEFAULT_BASELINE_NAME = "sancheck_baseline.json"


def fingerprint(f: Finding) -> str:
    h = hashlib.sha256(
        f"{f.file}|{f.tool}|{f.rule}|{f.message}".encode("utf-8")
    )
    return h.hexdigest()[:16]


def default_baseline_path() -> Optional[Path]:
    """The committed baseline, when findable: ``benchmarks/`` under the
    current directory or next to the installed ``repro`` package's repo
    root (source checkouts)."""
    candidates = [Path.cwd() / "benchmarks" / DEFAULT_BASELINE_NAME]
    try:
        import repro

        pkg = Path(repro.__file__).resolve().parent
        candidates.append(
            pkg.parent.parent / "benchmarks" / DEFAULT_BASELINE_NAME
        )
    except Exception:  # pragma: no cover - repro is always importable here
        pass
    for c in candidates:
        if c.is_file():
            return c
    return None


def load_baseline(path: Path) -> Dict[str, dict]:
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"unsupported baseline schema {doc.get('schema')!r} in {path}"
        )
    return {e["fingerprint"]: e for e in doc.get("findings", [])}


def split_by_baseline(
    findings: Sequence[Finding], baseline: Dict[str, dict]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition into (new, baselined).  Only static findings (those
    carrying a file) are ever baselined — dynamic race/deadlock findings
    must always fail."""
    new: List[Finding] = []
    known: List[Finding] = []
    for f in findings:
        if f.file and fingerprint(f) in baseline:
            known.append(f)
        else:
            new.append(f)
    return new, known


def render_baseline(findings: Sequence[Finding]) -> str:
    entries = []
    for f in sorted(
        (f for f in findings if f.file), key=Finding.sort_key
    ):
        entries.append(
            {
                "fingerprint": fingerprint(f),
                "file": f.file,
                "line": f.line,
                "tool": f.tool,
                "rule": f.rule,
                "severity": f.severity,
                "message": f.message,
            }
        )
    # a later duplicate fingerprint (same finding at two lines) keeps the
    # first occurrence only — the fingerprint is the identity
    seen = set()
    unique = []
    for e in entries:
        if e["fingerprint"] not in seen:
            seen.add(e["fingerprint"])
            unique.append(e)
    doc = {"schema": BASELINE_SCHEMA, "findings": unique}
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(render_baseline(findings), encoding="utf-8")
