"""The effect lattice: per-function intrinsic effect extraction.

Each analyzed function gets a set of **effects** — the atoms the
interprocedural propagation (:mod:`repro.sancheck.flow.taint`) unions up
the call graph.  The lattice is a powerset: bottom is the empty set
(pure), top is every effect; join is set union, so the fixpoint exists
and is reached in at most ``|effects| x |functions|`` steps.

Effects carry a *witness*: the concrete call (and line) that introduced
them, so a verdict at a protocol entry point can print the full chain
down to the offending ``random.random()`` three modules away.

Unseeded vs. seeded RNG is the load-bearing distinction (paper §5.2:
restarted ranks must regenerate bit-identical data): ``seeded_rng(seed)``
/ ``block_rng(seed, *coords)`` / ``default_rng(seed)`` are deterministic
and *allowed* on recovery paths; bare ``random.*``, legacy global-state
``numpy.random.*`` and argument-less ``default_rng()`` are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.sancheck.flow.callgraph import SHM_METHODS, FunctionNode
from repro.sancheck.simlint import (
    NUMPY_LEGACY_RANDOM,
    WALLCLOCK_CALLS,
    _module_allowed,
)

RNG_UNSEEDED = "reads-rng-unseeded"
RNG_SEEDED = "reads-rng-seeded"
WALLCLOCK = "reads-wallclock"
MUTATES_SHM = "mutates-shm"
MUTATES_GLOBAL = "mutates-global"
MPI_SEND = "mpi-send"
MPI_RECV = "mpi-recv"
ALLOCATES = "allocates"

ALL_EFFECTS: Tuple[str, ...] = (
    RNG_UNSEEDED,
    RNG_SEEDED,
    WALLCLOCK,
    MUTATES_SHM,
    MUTATES_GLOBAL,
    MPI_SEND,
    MPI_RECV,
    ALLOCATES,
)

#: terminal attribute names that classify unresolved method calls
MPI_SEND_METHODS = frozenset({"send", "isend", "sendrecv"})
MPI_RECV_METHODS = frozenset({"recv", "irecv", "sendrecv", "probe"})
MPI_COLLECTIVE_METHODS = frozenset(
    {
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "gather",
        "allgather",
        "scatter",
        "alltoall",
        "reduce_obj",
        "allreduce_obj",
        "custom_collective",
    }
)

#: numpy constructors that allocate fresh buffers
NUMPY_ALLOCATORS = frozenset(
    {
        "numpy.empty",
        "numpy.zeros",
        "numpy.ones",
        "numpy.full",
        "numpy.arange",
        "numpy.empty_like",
        "numpy.zeros_like",
        "numpy.ones_like",
        "numpy.full_like",
        "numpy.array",
        "numpy.copy",
        "numpy.frombuffer",
        "numpy.fromiter",
        "numpy.ascontiguousarray",
        "numpy.concatenate",
    }
)


@dataclass(frozen=True)
class Intrinsic:
    """Why a function has an effect of its own (before propagation)."""

    site: str  # human description, e.g. "random.random()"
    line: int


#: map of function qualname -> {effect: Intrinsic}
IntrinsicMap = Dict[str, Dict[str, Intrinsic]]


def _classify_external(
    path: str, has_args: bool, module: str, wallclock_allow: Tuple[str, ...], rng_allow: Tuple[str, ...]
) -> Dict[str, str]:
    """Effects introduced by one unresolved external call path."""
    out: Dict[str, str] = {}
    if path in WALLCLOCK_CALLS and not _module_allowed(module, wallclock_allow):
        out[WALLCLOCK] = f"{path}()"
    if not _module_allowed(module, rng_allow):
        if path == "random" or path.startswith("random."):
            out[RNG_UNSEEDED] = f"{path}()"
        elif (
            path.startswith("numpy.random.")
            and path.split(".")[-1] in NUMPY_LEGACY_RANDOM
        ):
            out[RNG_UNSEEDED] = f"legacy {path}()"
        elif path == "numpy.random.default_rng":
            if has_args:
                out[RNG_SEEDED] = f"{path}(seed)"
            else:
                out[RNG_UNSEEDED] = f"unseeded {path}()"
    elif path == "numpy.random.default_rng":
        out[RNG_SEEDED] = f"{path}(...)"
    if path in NUMPY_ALLOCATORS:
        out[ALLOCATES] = f"{path}()"
    return out


def intrinsic_effects(
    fn: FunctionNode,
    wallclock_allow: Tuple[str, ...],
    rng_allow: Tuple[str, ...],
) -> Dict[str, Intrinsic]:
    """The effects a function exhibits through its own body alone."""
    out: Dict[str, Intrinsic] = {}

    def add(effect: str, site: str, line: int) -> None:
        prev = out.get(effect)
        if prev is None or (line, site) < (prev.line, prev.site):
            out[effect] = Intrinsic(site=site, line=line)

    for path, line, has_args in sorted(fn.external):
        for effect, site in sorted(
            _classify_external(
                path, has_args, fn.module, wallclock_allow, rng_allow
            ).items()
        ):
            add(effect, site, line)

    for name, line in sorted(fn.method_calls):
        if name in SHM_METHODS:
            add(MUTATES_SHM, f".{name}(...)", line)
            if name != "shm_unlink":
                add(ALLOCATES, f".{name}(...)", line)
        if name in MPI_SEND_METHODS:
            add(MPI_SEND, f".{name}(...)", line)
        if name in MPI_RECV_METHODS:
            add(MPI_RECV, f".{name}(...)", line)
        if name in MPI_COLLECTIVE_METHODS:
            add(MPI_SEND, f".{name}(...)", line)
            add(MPI_RECV, f".{name}(...)", line)

    for line in sorted(fn.shm_writes):
        add(MUTATES_SHM, "write through SHM-backed array", line)

    for name, line in sorted(fn.global_writes):
        add(MUTATES_GLOBAL, f"global {name} = ...", line)

    return out


def build_intrinsics(
    functions: Dict[str, FunctionNode],
    wallclock_allow: Tuple[str, ...],
    rng_allow: Tuple[str, ...],
) -> IntrinsicMap:
    return {
        q: intrinsic_effects(functions[q], wallclock_allow, rng_allow)
        for q in sorted(functions)
    }
