"""Common finding/report types shared by all three sanitizer analyses.

Every analysis — the static linter, the SHM race detector and the MPI
deadlock detector — reduces to a list of :class:`Finding`; a
:class:`Report` aggregates them, renders an ASCII summary and maps to a
process exit code (the CLI contract: zero findings == exit 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.util import render_table


@dataclass(frozen=True)
class Finding:
    """One violation discovered by an analysis.

    ``tool`` names the analysis (``simlint``, ``race``, ``deadlock``);
    ``rule`` the specific invariant (e.g. ``wallclock``, ``shm-race``,
    ``deadlock-cycle``).  Static findings carry ``file``/``line``; dynamic
    findings carry the offending world ``ranks`` and the virtual ``clock``
    at detection time.  ``detail`` holds a multi-line elaboration (stuck-tag
    diagnosis, timeline rendering) kept out of the one-line summary.
    """

    tool: str
    rule: str
    message: str
    file: str = ""
    line: int = 0
    ranks: Tuple[int, ...] = ()
    clock: float = 0.0
    detail: str = ""
    #: ``error`` | ``warning`` | ``note`` — CI gates on ``--fail-on``
    severity: str = "error"

    def sort_key(self) -> Tuple:
        """Canonical ordering: byte-stable output across runs/workers."""
        return (self.file, self.line, self.tool, self.rule, self.message, self.ranks, self.clock)

    def location(self) -> str:
        if self.file:
            return f"{self.file}:{self.line}"
        if self.ranks:
            return f"ranks {','.join(map(str, self.ranks))} @ t={self.clock:.4g}s"
        return "-"

    def __str__(self) -> str:
        base = f"[{self.tool}:{self.rule}] {self.location()}: {self.message}"
        return base if not self.detail else base + "\n" + self.detail


@dataclass
class Report:
    """Aggregated findings of one or more analyses."""

    findings: List[Finding] = field(default_factory=list)
    #: analyses that actually ran (so "0 findings" is meaningful)
    analyses: List[str] = field(default_factory=list)
    #: pre-existing findings suppressed by the committed baseline
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Sequence[Finding], analysis: Optional[str] = None) -> None:
        self.findings.extend(findings)
        if analysis is not None and analysis not in self.analyses:
            self.analyses.append(analysis)

    def by_tool(self, tool: str) -> List[Finding]:
        return [f for f in self.findings if f.tool == tool]

    def finalize(self) -> "Report":
        """Sort findings by (file, line, tool, rule, message) and drop
        exact duplicates, so rendered reports, exports and the baseline
        file are byte-stable across runs and worker counts."""
        seen = set()
        unique: List[Finding] = []
        for f in sorted(self.findings, key=Finding.sort_key):
            key = f.sort_key()
            if key not in seen:
                seen.add(key)
                unique.append(f)
        self.findings = unique
        return self

    def count(self, fail_on: str = "any") -> int:
        """Findings that gate the exit code at the given threshold:
        ``error`` counts only errors, ``warning`` adds warnings, ``any``
        (the default, and the historical behavior) counts everything."""
        if fail_on == "error":
            return sum(1 for f in self.findings if f.severity == "error")
        if fail_on == "warning":
            return sum(
                1 for f in self.findings if f.severity in ("error", "warning")
            )
        return len(self.findings)

    def exit_code(self, fail_on: str = "any") -> int:
        return 0 if self.count(fail_on) == 0 else 1

    def render(self) -> str:
        """Human-readable summary: a table of findings plus any details."""
        self.finalize()
        ran = ", ".join(self.analyses) or "(none)"
        suffix = f"; {self.baselined} baselined" if self.baselined else ""
        if self.ok:
            return f"sancheck: 0 findings (analyses: {ran}{suffix})"
        rows = [
            [f.severity, f.tool, f.rule, f.location(), f.message]
            for f in self.findings
        ]
        table = render_table(
            ["severity", "tool", "rule", "where", "finding"],
            rows,
            title=(
                f"sancheck — {len(self.findings)} finding(s), "
                f"analyses: {ran}{suffix}"
            ),
        )
        details = [f.detail for f in self.findings if f.detail]
        return table if not details else table + "\n\n" + "\n\n".join(details)
