"""Wait-for-graph deadlock detection over blocked MPI calls.

The simulator already carries a wall-clock timeout as a last-resort safety
net (``Job.deadlock_timeout_s``); this detector finds communication
deadlocks *structurally* and immediately: it installs as a
:class:`~repro.sim.observer.SimObserver`, tracks which ranks are blocked
and on what (pt2pt receives with their ``(source, tag)``, collectives with
their member sets), maintains send/recv counters mirroring the mailboxes,
and on every block event searches the wait-for graph for a cycle.

Edges:

* a rank blocked in ``recv(src, tag)`` waits for ``src`` — unless a
  matching message is already in flight (counter > 0), in which case the
  rank is satisfiable and contributes no edge;
* a rank blocked in a collective waits for every member that has not yet
  entered the rendezvous.

Only currently-blocked ranks appear in the graph, so a cycle is a true
"everyone waits on everyone" witness.  On detection the detector records a
:class:`~repro.sancheck.findings.Finding` carrying a **stuck-tag
diagnosis** (a queued message whose tag differs from the one the receiver
asked for — the classic mismatched-tag bug) and, when the job has a
:class:`~repro.sim.trace.Trace`, the rendered timeline with the deadlocked
ranks marked.  It then aborts the job (configurable) so the run fails fast
instead of burning the wall-clock timeout.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.sancheck.findings import Finding
from repro.sim.observer import BlockDesc, SimObserver


class DeadlockDetector(SimObserver):
    """Cycle detection over the wait-for graph of blocked ranks."""

    def __init__(self, abort_on_deadlock: bool = True):
        self.abort_on_deadlock = abort_on_deadlock
        self._lock = threading.Lock()  # simlint: allow[threading] -- detector-internal state guard
        #: world rank -> its current BlockDesc
        self._blocked: Dict[int, BlockDesc] = {}
        #: (comm, dst, src, tag) -> messages sent but not yet received
        self._in_flight: Dict[Tuple[str, int, int, int], int] = {}
        #: comm name -> world ranks inside the current collective instance
        self._entered: Dict[str, set] = {}
        #: comm name -> exits still owed before the instance resets
        self._exits_due: Dict[str, int] = {}
        self.findings: List[Finding] = []
        self._reported: set = set()
        self._job: Any = None

    # -- installation ----------------------------------------------------------
    def install(self, job: Any) -> "DeadlockDetector":
        from repro.sim.observer import install_observer

        install_observer(job, self)
        self._job = job
        return self

    # -- message accounting ------------------------------------------------------
    def on_send(self, src: int, dst: int, tag: int, nbytes: int, clock: float) -> Any:
        with self._lock:
            # comm name is not on the send path; key by ranks+tag only —
            # a message on *any* communicator between the pair satisfies
            # the matching (dst, src, tag) wait on that communicator, and
            # over-approximating satisfiability only suppresses reports,
            # never fabricates them
            self._in_flight[("", dst, src, tag)] = (
                self._in_flight.get(("", dst, src, tag), 0) + 1
            )
        return None

    def on_recv(
        self, dst: int, src: int, tag: int, token: Any, clock: float, waited_s: float = 0.0
    ) -> None:
        with self._lock:
            key = ("", dst, src, tag)
            n = self._in_flight.get(key, 0)
            if n <= 1:
                self._in_flight.pop(key, None)
            else:
                self._in_flight[key] = n - 1

    # -- collective membership tracking ------------------------------------------
    def on_collective_enter(self, comm: str, size: int, rank: int, clock: float) -> None:
        with self._lock:
            self._entered.setdefault(comm, set()).add(rank)
            self._exits_due[comm] = size

    def on_collective_exit(self, comm: str, size: int, rank: int, clock: float) -> None:
        with self._lock:
            due = self._exits_due.get(comm, 0) - 1
            if due <= 0:
                self._entered.pop(comm, None)
                self._exits_due.pop(comm, None)
            else:
                self._exits_due[comm] = due

    # -- blocking and cycle search -------------------------------------------------
    def on_block(self, rank: int, desc: BlockDesc) -> None:
        cycle: Optional[List[int]] = None
        with self._lock:
            self._blocked[rank] = desc
            cycle = self._find_cycle()
            if cycle is not None:
                self._report(cycle)
        # abort only after releasing our lock: Job._wake_all acquires the
        # communicator condition variables (observer lock-order contract)
        if cycle is not None and self.abort_on_deadlock and self._job is not None:
            self._job.abort()

    def on_unblock(self, rank: int) -> None:
        with self._lock:
            self._blocked.pop(rank, None)

    # -- graph ---------------------------------------------------------------------
    def _edges_of(self, rank: int, desc: BlockDesc) -> List[int]:
        if desc.kind == "recv":
            assert desc.peer is not None
            key = ("", rank, desc.peer, desc.tag if desc.tag is not None else 0)
            if self._in_flight.get(key, 0) > 0:
                return []  # satisfiable: the matching message is in flight
            return [desc.peer]
        if desc.kind == "collective-join":
            # waiting for the previous instance of this communicator to
            # drain; the drainers hold their results and are by definition
            # not blocked in this communicator — always satisfiable
            return []
        entered = self._entered.get(desc.comm, set())
        return [m for m in desc.members if m != rank and m not in entered]

    def _find_cycle(self) -> Optional[List[int]]:
        """A cycle through currently-blocked ranks, or None."""
        graph = {
            r: [p for p in self._edges_of(r, d) if p in self._blocked]
            for r, d in self._blocked.items()
        }
        WHITE, GREY, BLACK = 0, 1, 2
        color = {r: WHITE for r in graph}
        stack: List[int] = []

        def dfs(r: int) -> Optional[List[int]]:
            color[r] = GREY
            stack.append(r)
            for p in graph[r]:
                if color[p] == GREY:
                    return stack[stack.index(p):]
                if color[p] == WHITE:
                    found = dfs(p)
                    if found is not None:
                        return found
            stack.pop()
            color[r] = BLACK
            return None

        for r in graph:
            if color[r] == WHITE:
                cycle = dfs(r)
                if cycle is not None:
                    return cycle
        return None

    # -- reporting --------------------------------------------------------------------
    def _stuck_tag_diagnosis(self, rank: int, desc: BlockDesc) -> Optional[str]:
        """A queued message from the awaited peer under a *different* tag —
        the signature of a mismatched send/recv tag pair."""
        if desc.kind != "recv" or desc.peer is None:
            return None
        for (_, dst, src, tag), n in self._in_flight.items():
            if dst == rank and src == desc.peer and tag != desc.tag and n > 0:
                return (
                    f"rank {rank} waits for tag={desc.tag} from rank "
                    f"{desc.peer}, but {n} message(s) with tag={tag} are "
                    "queued from that rank — mismatched send/recv tags"
                )
        return None

    def _report(self, cycle: List[int]) -> None:
        key = frozenset(cycle)
        if key in self._reported:
            return
        self._reported.add(key)
        waits = []
        diagnoses = []
        for r in cycle:
            desc = self._blocked[r]
            if desc.kind == "recv":
                waits.append(
                    f"  rank {r}: recv(src={desc.peer}, tag={desc.tag}) "
                    f"on {desc.comm}"
                )
            else:
                missing = [
                    m
                    for m in desc.members
                    if m != r and m not in self._entered.get(desc.comm, set())
                ]
                waits.append(
                    f"  rank {r}: collective on {desc.comm}, waiting for "
                    f"ranks {missing} to arrive"
                )
            diag = self._stuck_tag_diagnosis(r, desc)
            if diag is not None:
                diagnoses.append("  " + diag)
        detail = "\n".join(waits + diagnoses)
        trace = getattr(self._job, "trace", None)
        if trace is not None and len(trace):
            from repro.sim.trace import render_timeline

            detail += "\n" + render_timeline(trace, focus=cycle)
        self.findings.append(
            Finding(
                tool="deadlock",
                rule="deadlock-cycle",
                message=(
                    "wait-for cycle among ranks "
                    + " -> ".join(str(r) for r in cycle + [cycle[0]])
                ),
                ranks=tuple(cycle),
                detail=detail,
            )
        )
