"""``repro check`` — run the sanitizer suite from the command line.

Usage::

    repro check lint                  # static invariants over the package
    repro check lint --path FILE.py   # ... or over explicit files/dirs
    repro check flow                  # whole-program effect/taint analysis
    repro check races                 # race-detector self-test + clean run
    repro check deadlock              # deadlock-detector self-test + clean run
    repro check --all                 # everything
    repro check --deep                # lint + flow (the static gauntlet)

Baseline workflow (``--deep``/``flow``)::

    repro check --deep                      # new findings only (committed
                                            # baseline subtracts known debt)
    repro check --deep --update-baseline    # accept the current findings
    repro check --deep --no-baseline        # everything, baseline ignored

Machine output: ``--sarif out.sarif`` / ``--jsonl out.jsonl`` write the
full (pre-baseline) finding set in SARIF 2.1.0 / JSON-lines.

Exit codes: **0** — every requested analysis ran and produced zero
findings at the ``--fail-on`` threshold (``error`` < ``warning`` <
``any``; default ``any``, the historical contract); **1** — findings;
**2** — an analyzer crashed (distinct so CI can tell "found a bug" from
"the checker is broken").
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path
from typing import Callable, List, Optional

from repro.sancheck.findings import Finding, Report

ANALYSES = ("lint", "flow", "races", "deadlock")
FAIL_ON_CHOICES = ("error", "warning", "any")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_CRASH = 2


def _run_lint(report: Report, paths: Optional[List[str]]) -> None:
    from repro.sancheck.simlint import default_lint_root, lint_paths

    targets = paths or [str(default_lint_root())]
    report.extend(lint_paths(targets), analysis="simlint")


def _run_flow(report: Report, paths: Optional[List[str]]) -> None:
    from repro.sancheck.flow import analyze_paths
    from repro.sancheck.simlint import default_lint_root

    targets = paths or [str(default_lint_root())]
    report.extend(analyze_paths(targets), analysis="flow")


def _selftest_failure(tool: str, what: str) -> Finding:
    return Finding(
        tool=tool,
        rule="selftest",
        message=f"self-test failed: {what}",
    )


def _run_races(report: Report) -> None:
    from repro.sancheck.scenarios import run_clean_selfckpt, run_seeded_race

    _, seeded = run_seeded_race()
    if not seeded.findings:
        report.add(
            _selftest_failure("race", "the seeded unsynchronized SHM write was NOT flagged")
        )
    result, race, _ = run_clean_selfckpt()
    if not result.completed:
        report.add(_selftest_failure("race", "clean self-checkpoint run did not complete"))
    report.extend(race.findings, analysis="race")


def _run_deadlock(report: Report) -> None:
    from repro.sancheck.scenarios import run_clean_selfckpt, run_seeded_deadlock

    _, seeded = run_seeded_deadlock()
    if not seeded.findings:
        report.add(
            _selftest_failure(
                "deadlock", "the seeded mismatched-tag deadlock was NOT detected"
            )
        )
    result, _, deadlock = run_clean_selfckpt()
    if not result.completed:
        report.add(
            _selftest_failure("deadlock", "clean self-checkpoint run did not complete")
        )
    report.extend(deadlock.findings, analysis="deadlock")


def _resolve_baseline(args: argparse.Namespace) -> Optional[Path]:
    """The baseline file to subtract, or None when disabled/absent."""
    from repro.sancheck.flow.baseline import default_baseline_path

    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    return default_baseline_path()


def check_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Simulator sanitizer suite: static invariant lint, whole-program "
            "effect/taint analysis, SHM race detection, MPI deadlock "
            "detection (see docs/SANCHECK.md)."
        ),
    )
    parser.add_argument(
        "analyses",
        nargs="*",
        metavar="analysis",
        help=f"analyses to run: {', '.join(ANALYSES)}",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every analysis"
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="run the static gauntlet (lint + flow) with the committed baseline",
    )
    parser.add_argument(
        "--path",
        action="append",
        default=None,
        help="analyze these files/directories instead of the installed "
        "package (repeatable)",
    )
    parser.add_argument(
        "--fail-on",
        choices=FAIL_ON_CHOICES,
        default="any",
        help="minimum severity that fails the run (default: any finding)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file of accepted findings "
        "(default: benchmarks/sancheck_baseline.json when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file — report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current static findings and exit 0",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="write all findings (pre-baseline) as SARIF 2.1.0",
    )
    parser.add_argument(
        "--jsonl",
        default=None,
        metavar="FILE",
        help="write all findings (pre-baseline) as JSON lines",
    )
    args = parser.parse_args(argv)

    unknown = [a for a in args.analyses if a not in ANALYSES]
    if unknown:
        parser.error(
            f"unknown analyses {unknown}; choose from {', '.join(ANALYSES)}"
        )
    selected = list(args.analyses)
    if args.all:
        selected = list(ANALYSES)
    elif args.deep:
        selected = sorted(set(selected) | {"lint", "flow"}, key=ANALYSES.index)
    if not selected:
        parser.error(
            "nothing to do: name at least one analysis or pass --all/--deep"
        )
    if args.update_baseline and not ({"lint", "flow"} & set(selected)):
        parser.error("--update-baseline requires a static analysis (lint/flow)")
    if args.path:
        missing = [p for p in args.path if not Path(p).exists()]
        if missing:
            parser.error(f"--path does not exist: {', '.join(missing)}")

    report = Report()
    runners: List[Callable[[], None]] = []
    if "lint" in selected:
        runners.append(lambda: _run_lint(report, args.path))
    if "flow" in selected:
        runners.append(lambda: _run_flow(report, args.path))
    if "races" in selected:
        runners.append(lambda: _run_races(report))
    if "deadlock" in selected:
        runners.append(lambda: _run_deadlock(report))
    for run in runners:
        try:
            run()
        except Exception:
            traceback.print_exc()
            print(
                "sancheck: analyzer crashed — this is a bug in the checker, "
                "not a finding",
                file=sys.stderr,
            )
            return EXIT_CRASH

    report.finalize()

    # machine exports carry the full finding set, before baselining
    if args.sarif:
        from repro.sancheck.flow.export import write_sarif

        write_sarif(Path(args.sarif), report.findings)
    if args.jsonl:
        from repro.sancheck.flow.export import write_jsonl

        write_jsonl(Path(args.jsonl), report.findings)

    static = [f for f in report.findings if f.file]
    if args.update_baseline:
        from repro.sancheck.flow.baseline import write_baseline

        path = (
            Path(args.baseline)
            if args.baseline is not None
            else Path.cwd() / "benchmarks" / "sancheck_baseline.json"
        )
        write_baseline(path, static)
        print(f"sancheck: baseline updated with {len(static)} finding(s): {path}")
        return EXIT_CLEAN

    baseline_path = _resolve_baseline(args)
    if baseline_path is not None and baseline_path.is_file():
        from repro.sancheck.flow.baseline import load_baseline, split_by_baseline

        baseline = load_baseline(baseline_path)
        new, known = split_by_baseline(report.findings, baseline)
        report.findings = new
        report.baselined = len(known)

    print(report.render())
    return report.exit_code(args.fail_on)
