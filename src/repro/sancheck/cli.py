"""``repro check`` — run the sanitizer suite from the command line.

Usage::

    repro check lint                  # static invariants over the package
    repro check lint --path FILE.py   # ... or over explicit files/dirs
    repro check races                 # race-detector self-test + clean run
    repro check deadlock              # deadlock-detector self-test + clean run
    repro check --all                 # everything

Exit code 0 means every requested analysis ran and produced zero findings
(and, for the dynamic analyses, the seeded-bug self-tests *did* detect
their planted bugs).  Anything else exits 1.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.sancheck.findings import Finding, Report

ANALYSES = ("lint", "races", "deadlock")


def _run_lint(report: Report, paths: Optional[List[str]]) -> None:
    from repro.sancheck.simlint import default_lint_root, lint_paths

    targets = paths or [str(default_lint_root())]
    report.extend(lint_paths(targets), analysis="simlint")


def _selftest_failure(tool: str, what: str) -> Finding:
    return Finding(
        tool=tool,
        rule="selftest",
        message=f"self-test failed: {what}",
    )


def _run_races(report: Report) -> None:
    from repro.sancheck.scenarios import run_clean_selfckpt, run_seeded_race

    _, seeded = run_seeded_race()
    if not seeded.findings:
        report.add(
            _selftest_failure("race", "the seeded unsynchronized SHM write was NOT flagged")
        )
    result, race, _ = run_clean_selfckpt()
    if not result.completed:
        report.add(_selftest_failure("race", "clean self-checkpoint run did not complete"))
    report.extend(race.findings, analysis="race")


def _run_deadlock(report: Report) -> None:
    from repro.sancheck.scenarios import run_clean_selfckpt, run_seeded_deadlock

    _, seeded = run_seeded_deadlock()
    if not seeded.findings:
        report.add(
            _selftest_failure(
                "deadlock", "the seeded mismatched-tag deadlock was NOT detected"
            )
        )
    result, _, deadlock = run_clean_selfckpt()
    if not result.completed:
        report.add(
            _selftest_failure("deadlock", "clean self-checkpoint run did not complete")
        )
    report.extend(deadlock.findings, analysis="deadlock")


def check_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Simulator sanitizer suite: static invariant lint, SHM race "
            "detection, MPI deadlock detection (see docs/SANCHECK.md)."
        ),
    )
    parser.add_argument(
        "analyses",
        nargs="*",
        metavar="analysis",
        help=f"analyses to run: {', '.join(ANALYSES)}",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every analysis"
    )
    parser.add_argument(
        "--path",
        action="append",
        default=None,
        help="lint these files/directories instead of the installed package "
        "(repeatable)",
    )
    args = parser.parse_args(argv)

    unknown = [a for a in args.analyses if a not in ANALYSES]
    if unknown:
        parser.error(
            f"unknown analyses {unknown}; choose from {', '.join(ANALYSES)}"
        )
    selected = list(ANALYSES) if args.all else list(args.analyses)
    if not selected:
        parser.error("nothing to do: name at least one analysis or pass --all")
    if args.path:
        from pathlib import Path

        missing = [p for p in args.path if not Path(p).exists()]
        if missing:
            parser.error(f"--path does not exist: {', '.join(missing)}")

    report = Report()
    if "lint" in selected:
        _run_lint(report, args.path)
    if "races" in selected:
        _run_races(report)
    if "deadlock" in selected:
        _run_deadlock(report)

    print(report.render())
    return report.exit_code()
