"""Vector-clock data-race detection over SHM segment accesses.

The self-checkpoint protocol's safety argument (paper §3.2) assumes SHM
accesses by co-resident ranks are ordered by communication: a segment
written during the flush phase must not be read or written concurrently by
a sibling rank, or the "recoverable at every instant" invariant silently
breaks.  This detector checks that **dynamically**: it installs as a
:class:`~repro.sim.observer.SimObserver`, maintains one vector clock per
world rank (ticked on sends, merged on receives and collectives — the
happens-before edges :mod:`repro.sim.mpi` actually provides), records every
SHM event (``create``/``attach``/``read``/``write``/``unlink`` from
:mod:`repro.sim.shm`), and reports two accesses to the same segment as a
race when they touch the same node, come from different ranks, at least one
is a write, and their vector clocks are concurrent.

Usage::

    det = RaceDetector(n_ranks)
    job = Job(cluster, app, n_ranks, observer=det)   # or det.install(job)
    job.run()
    report = det.findings          # [] on a race-free run

Thread-safety: callbacks arrive concurrently from rank threads; all state
is guarded by one internal lock.  Callbacks never touch simulator locks
(see the observer contract in :mod:`repro.sim.observer`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.sancheck.findings import Finding
from repro.sancheck.vectorclock import VectorClock, merge_all
from repro.sim._tls import current_ctx
from repro.sim.observer import SimObserver

#: SHM event kinds that modify the segment (conflict if concurrent with
#: anything); ``attach``/``read`` only conflict with writes
WRITE_KINDS = {"create", "write", "unlink"}

#: accesses kept per segment; old ordered accesses age out first
HISTORY_LIMIT = 128


@dataclass(frozen=True)
class ShmAccess:
    """One recorded access to a segment."""

    rank: int
    kind: str
    vc: VectorClock
    clock: float

    @property
    def is_write(self) -> bool:
        return self.kind in WRITE_KINDS


class _CollectiveState:
    """Entry snapshots of one in-flight collective instance."""

    def __init__(self, size: int):
        self.size = size
        self.entries: List[VectorClock] = []
        self.merged: Optional[VectorClock] = None
        self.exits = 0


class RaceDetector(SimObserver):
    """Happens-before race detector for SHM segment accesses."""

    def __init__(self, n_ranks: int):
        self.n_ranks = n_ranks
        self._lock = threading.Lock()  # simlint: allow[threading] -- detector-internal state guard
        self._vc: List[VectorClock] = [VectorClock(n_ranks) for _ in range(n_ranks)]
        self._history: Dict[Tuple[int, str], List[ShmAccess]] = {}
        self._reported: Set[Tuple[int, str, int, int]] = set()
        self._pending: Dict[str, _CollectiveState] = {}
        self.findings: List[Finding] = []
        self._clusters: List[Any] = []

    # -- installation ----------------------------------------------------------
    def install(self, job: Any) -> "RaceDetector":
        """Attach to a job: communicator events plus every node's SHM store."""
        from repro.sim.observer import install_observer

        install_observer(job, self)
        self.watch_cluster(job.cluster)
        return self

    def watch_cluster(self, cluster: Any) -> None:
        """Subscribe to SHM events on every node of ``cluster``."""
        from repro.sim.observer import install_observer

        self._clusters.append(cluster)
        for node in cluster.nodes:
            store = node.shm
            if store.observer is None:
                store.observer = self
            elif store.observer is not self:
                install_observer(store, self)  # composes via MultiObserver

    def segment_inventory(self) -> Dict[int, List[Tuple[str, int]]]:
        """Current ``{node_id: [(segment, nbytes)]}`` across watched
        clusters, via the stores' consistent :meth:`ShmStore.snapshot`."""
        inventory: Dict[int, List[Tuple[str, int]]] = {}
        for cluster in self._clusters:
            for node in cluster.nodes:
                segs = node.shm.snapshot()
                if segs:
                    inventory[node.node_id] = [(s.name, s.nbytes) for s in segs]
        return inventory

    # -- happens-before edges from communication --------------------------------
    def on_send(self, src: int, dst: int, tag: int, nbytes: int, clock: float) -> Any:
        with self._lock:
            self._vc[src].tick(src)
            return self._vc[src].copy()

    def on_recv(
        self, dst: int, src: int, tag: int, token: Any, clock: float, waited_s: float = 0.0
    ) -> None:
        with self._lock:
            if isinstance(token, VectorClock):
                self._vc[dst].merge(token)
            self._vc[dst].tick(dst)

    def on_collective_enter(self, comm: str, size: int, rank: int, clock: float) -> None:
        with self._lock:
            self._vc[rank].tick(rank)
            state = self._pending.setdefault(comm, _CollectiveState(size))
            state.entries.append(self._vc[rank].copy())

    def on_collective_exit(self, comm: str, size: int, rank: int, clock: float) -> None:
        with self._lock:
            state = self._pending.get(comm)
            if state is None:  # exit without enter: observer attached mid-run
                return
            if state.merged is None:
                state.merged = merge_all(state.entries)
            self._vc[rank].merge(state.merged)
            self._vc[rank].tick(rank)
            state.exits += 1
            if state.exits >= state.size:
                del self._pending[comm]

    # -- SHM access recording ----------------------------------------------------
    def on_shm(self, node_id: int, name: str, kind: str, nbytes: int = 0) -> None:
        try:
            ctx = current_ctx()
        except RuntimeError:
            return  # access from a non-rank thread (test harness, daemon)
        rank, clock = ctx.rank, ctx.clock
        with self._lock:
            if rank >= self.n_ranks:
                return
            self._vc[rank].tick(rank)
            access = ShmAccess(
                rank=rank, kind=kind, vc=self._vc[rank].copy(), clock=clock
            )
            history = self._history.setdefault((node_id, name), [])
            for prior in history:
                if prior.rank == rank:
                    continue
                if not (prior.is_write or access.is_write):
                    continue
                if prior.vc.concurrent(access.vc):
                    self._record_race(node_id, name, prior, access)
            history.append(access)
            if len(history) > HISTORY_LIMIT:
                # drop the oldest accesses that are already ordered before
                # everything new; keeps memory bounded on long runs
                del history[: len(history) - HISTORY_LIMIT]

    def _record_race(
        self, node_id: int, name: str, a: ShmAccess, b: ShmAccess
    ) -> None:
        key = (node_id, name, min(a.rank, b.rank), max(a.rank, b.rank))
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(
            Finding(
                tool="race",
                rule="shm-race",
                message=(
                    f"concurrent {a.kind} by rank {a.rank} and {b.kind} by "
                    f"rank {b.rank} on SHM segment {name!r} (node {node_id}) "
                    "with no happens-before edge"
                ),
                ranks=(a.rank, b.rank),
                clock=max(a.clock, b.clock),
                detail=(
                    f"  rank {a.rank}: {a.kind} @ t={a.clock:.4g}s vc={a.vc.ticks}\n"
                    f"  rank {b.rank}: {b.kind} @ t={b.clock:.4g}s vc={b.vc.ticks}\n"
                    "  order these accesses with a message or collective "
                    "between the two ranks"
                ),
            )
        )
