"""Simulator sanitizer suite (``repro check ...``).

Four analyses guard the invariants the checkpoint protocols' correctness
arguments assume (see ``docs/SANCHECK.md``):

* :mod:`repro.sancheck.simlint` — static AST lint over the source tree
  (virtual-time-only, runtime-owned threading, seeded RNG, copy-before-
  mutate on MPI results);
* :mod:`repro.sancheck.flow` — whole-program interprocedural effect/taint
  analysis verifying the checkpoint-protocol lifecycle (no hidden
  nondeterminism reachable from ``checkpoint()``/``try_restore()``, no
  SHM write before the restore decision, kernels stay pure);
* :mod:`repro.sancheck.races` — a dynamic vector-clock race detector over
  SHM segment accesses;
* :mod:`repro.sancheck.deadlock` — a dynamic wait-for-graph deadlock
  detector over blocked MPI calls, with stuck-tag diagnosis.

The dynamic detectors are :class:`~repro.sim.observer.SimObserver`\\ s:
attach one (or several) to a :class:`~repro.sim.runtime.Job` and read its
``findings`` after the run.
"""

from repro.sancheck.deadlock import DeadlockDetector
from repro.sancheck.findings import Finding, Report
from repro.sancheck.flow import FlowConfig, analyze_paths
from repro.sancheck.races import RaceDetector, ShmAccess
from repro.sancheck.simlint import (
    ALL_RULES,
    LintConfig,
    default_lint_root,
    lint_paths,
    lint_source,
)
from repro.sancheck.vectorclock import VectorClock, merge_all

__all__ = [
    "Finding",
    "Report",
    "LintConfig",
    "ALL_RULES",
    "lint_source",
    "lint_paths",
    "default_lint_root",
    "analyze_paths",
    "FlowConfig",
    "VectorClock",
    "merge_all",
    "RaceDetector",
    "ShmAccess",
    "DeadlockDetector",
]
