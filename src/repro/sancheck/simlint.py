"""``simlint`` — AST lint pass enforcing the simulator's repo invariants.

The simulator's correctness argument rests on discipline the interpreter
cannot enforce: all timing flows through *virtual* clocks, all concurrency
through the :mod:`repro.sim` runtime, all randomness through seeded streams
(restarted ranks must regenerate bit-identical data, paper §5.2), and MPI
results must be copied before mutation (value semantics of real message
passing).  ``simlint`` checks those invariants statically over the source
tree:

``wallclock``
    No ``time.time``/``time.sleep``/``time.monotonic``/
    ``datetime.now``-style calls outside the allowlist (only
    ``repro.sim.mpi``, whose wall-clock deadline is the deadlock safety
    net, may consult real time).

``threading``
    No raw ``threading.Thread``/``Lock``/``Condition``/... construction
    outside ``repro.sim`` — rank concurrency belongs to the runtime.

``rng``
    No stdlib ``random`` and no legacy/unseeded ``numpy.random`` outside
    ``repro.util.rng``; everything else must derive streams from
    ``seeded_rng``/``block_rng``.

``recv-mutate``
    A name bound directly to an MPI ``recv``/collective result must not be
    mutated in place (``x += ...``, ``x[...] = ...``, ``x.fill(...)``)
    without an explicit copy — even though the simulated communicator
    copies defensively, application code written against it must stay
    correct on zero-copy transports.

``parallel``
    No direct ``multiprocessing`` / ``concurrent.futures`` imports outside
    :mod:`repro.par` — host-process parallelism must go through the one
    engine whose deterministic merge keeps artifacts byte-identical
    (everything else would race the campaign's canonical ordering).

``kernel-backend``
    No direct ``numba``/``cffi``/``cython`` imports outside
    :mod:`repro.ckpt.kernels` — compiled GF(256) backends are probed and
    selected in exactly one place (lazily, behind
    ``REPRO_KERNEL_BACKEND``), so the rest of the tree never grows a hard
    dependency on an optional accelerator.

``obs-label``
    String literals passed to ``ctx.span(...)`` must come from
    :data:`repro.obs.labels.SPAN_LABELS` and literals naming instruments
    (``registry.counter/gauge/histogram(...)``) from
    :data:`repro.obs.labels.METRIC_NAMES` — the closed vocabularies every
    exporter, report and dashboard keys on.  A typo'd label would create a
    silently-separate series; this catches it at lint time, before the
    registry's runtime check ever runs.

Suppression: a line containing ``# simlint: allow`` (all rules) or
``# simlint: allow[rule1,rule2]`` is exempt; ``# simlint:
disable=rule1,rule2`` is an accepted alias.  A pragma on a function's
``def`` line also covers the decorator lines above it — findings whose
AST nodes live inside a decorator expression are attributed to the
decorator's line, and forcing the pragma onto that line instead would
split the suppression from the function it documents.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.obs.labels import METRIC_NAMES, SPAN_LABELS
from repro.sancheck.findings import Finding

#: dotted call paths that consult the wall clock
WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.sleep",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: threading primitives whose construction is reserved to the runtime
THREADING_CALLS = {
    "threading.Thread",
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Event",
    "threading.Barrier",
    "threading.Timer",
    "threading.local",
}

#: legacy global-state numpy.random functions (unseeded by construction)
NUMPY_LEGACY_RANDOM = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "seed",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "uniform",
    "standard_normal",
    "bytes",
}

#: communicator methods whose return value feeds ``recv-mutate`` tracking
COMM_RESULT_METHODS = {
    "recv",
    "sendrecv",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "reduce_obj",
    "allreduce_obj",
}

#: call paths that count as an explicit copy of their argument
COPY_CALLS = {"numpy.copy", "numpy.array", "numpy.ascontiguousarray", "copy.copy", "copy.deepcopy"}

#: in-place mutator method names on tainted names
MUTATOR_METHODS = {"fill", "sort", "resize", "partition", "put", "setflags", "update", "clear", "append", "extend", "insert", "remove"}

#: method names whose first (string-literal) argument names a span
SPAN_METHODS = {"span"}

#: method names whose first (string-literal) argument names a metric
METRIC_METHODS = {"counter", "gauge", "histogram"}

#: modules whose import marks host-process parallelism (``parallel`` rule)
PARALLEL_MODULES = ("multiprocessing", "concurrent.futures")

#: compiled kernel-backend dependencies (``kernel-backend`` rule): these
#: imports stay confined to repro.ckpt.kernels so backend availability is
#: probed in exactly one place and REPRO_KERNEL_BACKEND governs selection
KERNEL_BACKEND_MODULES = ("numba", "cffi", "cython")

ALL_RULES = (
    "wallclock",
    "threading",
    "rng",
    "recv-mutate",
    "obs-label",
    "parallel",
    "kernel-backend",
)

_PRAGMA_RE = re.compile(
    r"#\s*simlint:\s*(?:allow|disable)(?:\[([\w\-,\s]*)\]|=([\w\-,\s]+))?"
)


@dataclass(frozen=True)
class LintConfig:
    """Per-rule module allowlists (prefix match on dotted module names)."""

    wallclock_allow: Tuple[str, ...] = (
        "repro.sim.mpi",
        "repro.par.progress",
        # lease expiry is real-world liveness (a dead executor's wall
        # clock stops), so the shard queue must read the host clock
        "repro.shard",
    )
    threading_allow: Tuple[str, ...] = ("repro.sim",)
    rng_allow: Tuple[str, ...] = ("repro.util.rng",)
    parallel_allow: Tuple[str, ...] = ("repro.par", "repro.shard")
    kernel_backend_allow: Tuple[str, ...] = ("repro.ckpt.kernels",)
    rules: Tuple[str, ...] = ALL_RULES


def _module_allowed(module: str, prefixes: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, anchored at the last ``repro``
    package directory; bare stem for files outside the package."""
    parts = list(path.parts)
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        rel = parts[idx:]
    else:
        rel = [parts[-1]]
    rel[-1] = Path(rel[-1]).stem
    if rel[-1] == "__init__":
        rel = rel[:-1] or ["repro"]
    return ".".join(rel)


def _pragma_lines(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to their suppressed rule sets
    (``None`` == all rules suppressed on that line)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_RE.search(line)
        if not m:
            continue
        rules = m.group(1) if m.group(1) is not None else m.group(2)
        if rules is None:
            out[i] = None
        else:
            out[i] = {r.strip() for r in rules.split(",") if r.strip()}
    return out


def _merge_pragma(
    pragmas: Dict[int, Optional[Set[str]]], line: int, rules: Optional[Set[str]]
) -> None:
    existing = pragmas.get(line)
    if line in pragmas and (existing is None or rules is None):
        pragmas[line] = None
    elif existing is not None and rules is not None:
        pragmas[line] = existing | rules
    else:
        pragmas[line] = set(rules) if rules is not None else None


def _anchor_decorator_pragmas(
    tree: ast.AST, pragmas: Dict[int, Optional[Set[str]]]
) -> None:
    """A pragma on a decorated ``def``/``class`` line also suppresses
    findings attributed to its decorator lines — decorator expressions
    carry their own linenos, which is where call findings land."""
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if not node.decorator_list or node.lineno not in pragmas:
            continue
        rules = pragmas[node.lineno]
        for dec in node.decorator_list:
            end = getattr(dec, "end_lineno", None) or dec.lineno
            for line in range(dec.lineno, end + 1):
                _merge_pragma(pragmas, line, rules)


class _ImportResolver(ast.NodeVisitor):
    """Track import aliases so call sites resolve to canonical dotted paths."""

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for a in node.names:
            self.aliases[a.asname or a.name.split(".")[0]] = (
                a.name if a.asname else a.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never hide the stdlib modules we track
        for a in node.names:
            if a.name == "*":
                continue
            self.aliases[a.asname or a.name] = f"{node.module}.{a.name}"

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted path of an attribute/name chain, or None."""
        attrs: List[str] = []
        while isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        return ".".join([base] + list(reversed(attrs)))


class _Linter(ast.NodeVisitor):
    def __init__(
        self,
        module: str,
        filename: str,
        config: LintConfig,
        pragmas: Dict[int, Optional[Set[str]]],
        imports: _ImportResolver,
    ):
        self.module = module
        self.filename = filename
        self.config = config
        self.pragmas = pragmas
        self.imports = imports
        self.findings: List[Finding] = []
        #: name -> lineno where it was tainted by a comm result (per scope)
        self._taint_stack: List[Dict[str, int]] = [{}]

    # -- helpers ---------------------------------------------------------------
    def _suppressed(self, rule: str, lineno: int) -> bool:
        if lineno not in self.pragmas:
            return False
        allowed = self.pragmas[lineno]
        return allowed is None or rule in allowed

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if rule not in self.config.rules or self._suppressed(rule, lineno):
            return
        self.findings.append(
            Finding(
                tool="simlint",
                rule=rule,
                message=message,
                file=self.filename,
                line=lineno,
            )
        )

    @property
    def _taint(self) -> Dict[str, int]:
        return self._taint_stack[-1]

    # -- parallel: imports of host-process parallelism modules -----------------
    def _parallel_module(self, module: str) -> Optional[str]:
        for p in PARALLEL_MODULES:
            if module == p or module.startswith(p + "."):
                return p
        return None

    def _check_parallel_import(self, node: ast.AST, module: str) -> None:
        hit = self._parallel_module(module)
        if hit is not None and not _module_allowed(
            self.module, self.config.parallel_allow
        ):
            self._report(
                "parallel",
                node,
                f"direct {hit} import — host-process parallelism goes "
                "through repro.par.ParallelEngine (deterministic merge, "
                "memo cache, crash folding)",
            )

    # -- kernel-backend: compiled-backend imports outside the kernel module ----
    def _check_kernel_backend_import(self, node: ast.AST, module: str) -> None:
        hit = next(
            (
                p
                for p in KERNEL_BACKEND_MODULES
                if module == p or module.startswith(p + ".")
            ),
            None,
        )
        if hit is not None and not _module_allowed(
            self.module, self.config.kernel_backend_allow
        ):
            self._report(
                "kernel-backend",
                node,
                f"direct {hit} import — compiled GF(256) backends live in "
                "repro.ckpt.kernels (lazy import, REPRO_KERNEL_BACKEND "
                "selection, byte-identical equivalence tests)",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for a in node.names:
            self._check_parallel_import(node, a.name)
            self._check_kernel_backend_import(node, a.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and not node.level:
            self._check_parallel_import(node, node.module)
            self._check_kernel_backend_import(node, node.module)
        self.generic_visit(node)

    # -- scope handling for recv-mutate ---------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._taint_stack.append({})
        self.generic_visit(node)
        self._taint_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._taint_stack.append({})
        self.generic_visit(node)
        self._taint_stack.pop()

    # -- call-based rules ------------------------------------------------------
    def _is_comm_result_call(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in COMM_RESULT_METHODS
        )

    def _is_copy_wrapped(self, node: ast.expr) -> bool:
        """True when ``node`` is an explicit copy of whatever it wraps."""
        if not isinstance(node, ast.Call):
            return False
        if isinstance(node.func, ast.Attribute) and node.func.attr == "copy":
            return True
        path = self.imports.resolve(node.func)
        return path in COPY_CALLS

    def visit_Call(self, node: ast.Call) -> None:
        path = self.imports.resolve(node.func)
        if path is not None:
            if path in WALLCLOCK_CALLS and not _module_allowed(
                self.module, self.config.wallclock_allow
            ):
                self._report(
                    "wallclock",
                    node,
                    f"wall-clock call {path}() — simulator code must use "
                    "virtual time (ctx.elapse/ctx.clock)",
                )
            if path in THREADING_CALLS and not _module_allowed(
                self.module, self.config.threading_allow
            ):
                self._report(
                    "threading",
                    node,
                    f"raw {path}() construction — rank concurrency belongs "
                    "to the repro.sim runtime",
                )
            if not _module_allowed(self.module, self.config.rng_allow):
                if path == "random" or path.startswith("random."):
                    self._report(
                        "rng",
                        node,
                        f"stdlib {path}() — derive streams from "
                        "repro.util.rng.seeded_rng/block_rng",
                    )
                elif (
                    path.startswith("numpy.random.")
                    and path.split(".")[-1] in NUMPY_LEGACY_RANDOM
                ):
                    self._report(
                        "rng",
                        node,
                        f"legacy global-state {path}() — use "
                        "repro.util.rng.seeded_rng/block_rng",
                    )
                elif path == "numpy.random.default_rng" and not (
                    node.args or node.keywords
                ):
                    self._report(
                        "rng",
                        node,
                        "unseeded numpy.random.default_rng() — restarted "
                        "ranks must be able to regenerate identical streams",
                    )
        self._check_obs_label(node)
        self.generic_visit(node)

    def _check_obs_label(self, node: ast.Call) -> None:
        """Validate literal span/metric names against the closed
        vocabularies in :mod:`repro.obs.labels`."""
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        if attr not in SPAN_METHODS and attr not in METRIC_METHODS:
            return
        arg: Optional[ast.expr] = node.args[0] if node.args else None
        if arg is None:
            for kw in node.keywords:
                if kw.arg == "name":
                    arg = kw.value
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            return  # dynamic names are the registry's runtime problem
        name = arg.value
        if attr in SPAN_METHODS and name not in SPAN_LABELS:
            self._report(
                "obs-label",
                node,
                f"span label {name!r} is not in repro.obs.labels.SPAN_LABELS"
                " — register it there (typo'd labels fragment the trace)",
            )
        elif attr in METRIC_METHODS and name not in METRIC_NAMES:
            self._report(
                "obs-label",
                node,
                f"metric name {name!r} is not in "
                "repro.obs.labels.METRIC_NAMES — register it there "
                "(typo'd names create silently-separate series)",
            )

    # -- recv-mutate taint tracking --------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        tainted = self._is_comm_result_call(node.value) and not self._is_copy_wrapped(
            node.value
        )
        for target in node.targets:
            names = (
                [e for e in target.elts if isinstance(e, ast.Name)]
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
                if isinstance(target, ast.Name)
                else []
            )
            for name in names:
                if tainted:
                    self._taint[name.id] = node.lineno
                else:
                    self._taint.pop(name.id, None)
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                self._check_mutation(target.value, node, f"{target.value.id}[...] = ...")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            self._check_mutation(node.target, node, f"{node.target.id} op= ...")
        elif isinstance(node.target, ast.Subscript) and isinstance(
            node.target.value, ast.Name
        ):
            self._check_mutation(
                node.target.value, node, f"{node.target.value.id}[...] op= ..."
            )
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in MUTATOR_METHODS
            and isinstance(call.func.value, ast.Name)
        ):
            self._check_mutation(
                call.func.value, node, f"{call.func.value.id}.{call.func.attr}(...)"
            )
        self.generic_visit(node)

    def _check_mutation(self, name: ast.Name, node: ast.AST, what: str) -> None:
        bound_at = self._taint.get(name.id)
        if bound_at is not None:
            self._report(
                "recv-mutate",
                node,
                f"in-place mutation {what} of {name.id!r} bound to an MPI "
                f"recv/collective result at line {bound_at} without an "
                "explicit copy",
            )


def lint_source(
    source: str,
    filename: str,
    module: Optional[str] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one source string; returns findings (possibly a syntax error)."""
    config = config or LintConfig()
    module = module or module_name_for(Path(filename))
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as e:
        return [
            Finding(
                tool="simlint",
                rule="syntax",
                message=f"cannot parse: {e.msg}",
                file=filename,
                line=e.lineno or 0,
            )
        ]
    imports = _ImportResolver()
    imports.visit(tree)
    pragmas = _pragma_lines(source)
    _anchor_decorator_pragmas(tree, pragmas)
    linter = _Linter(module, filename, config, pragmas, imports)
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.file, f.line, f.rule, f.message))


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    out: List[Path] = []
    for p in paths:
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
    return out


def lint_paths(
    paths: Sequence[Path], config: Optional[LintConfig] = None
) -> List[Finding]:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for path in iter_python_files([Path(p) for p in paths]):
        findings.extend(
            lint_source(
                path.read_text(encoding="utf-8"), str(path), config=config
            )
        )
    return findings


def default_lint_root() -> Path:
    """The installed ``repro`` package source tree."""
    import repro

    return Path(repro.__file__).resolve().parent
