"""repro — reproduction of "Self-Checkpoint: An In-Memory Checkpoint
Method Using Less Space and Its Practice on Fault-Tolerant HPL"
(Tang, Zhai, Yu, Chen, Zheng — PPoPP 2017).

Packages
--------
``repro.sim``
    Simulated cluster substrate: nodes with SHM and memory accounting, an
    MPI-like runtime (thread per rank, virtual clocks, alpha-beta network
    costing), failure injection, event tracing.
``repro.ckpt``
    The checkpoint protocols: self-checkpoint (the contribution), single /
    double / buddy / incremental / disk / multi-level baselines, group
    encoding (XOR, SUM, Reed-Solomon), grouping strategies, memory models,
    interval optima.
``repro.hpl``
    Distributed HPL (block-cyclic LU with partial pivoting), SKT-HPL,
    ABFT-HPL, and the master-node restart daemon.
``repro.apps``
    Additional fault-tolerant kernels (2-D stencil, conjugate gradients).
``repro.models``
    The paper's analytic models: HPL efficiency E(N)=N/(aN+b), machine
    specs, TOP500 data, checkpoint cost, reliability projections.
``repro.analysis``
    One driver per paper table/figure, ablations, endurance harness,
    report generation.

See README.md for a quickstart and DESIGN.md / EXPERIMENTS.md /
docs/PROTOCOLS.md for the reproduction methodology.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
