"""Obs harness — instrumented SKT-HPL with one injected failure.

Unlike the table/figure benches this one exercises the observability
stack itself: the full span/metrics pipeline rides a live failure-and-
recover run, and the machine-readable ``BENCH_obs.json`` perf record is
written next to the working directory (override with ``REPRO_BENCH_OUT``)
so the perf trajectory can diff simulated cost run-to-run.
"""

import json
import os

from repro.obs.bench import BENCH_SCHEMA_VERSION, bench_json
from repro.obs.report import render_report
from repro.obs.scenario import run_scenario


def bench_obs_skt(benchmark, show):
    run = benchmark.pedantic(
        run_scenario,
        args=("skt-hpl",),
        kwargs=dict(fail_at="panel:3", n=32, seed=42),
        iterations=1,
        rounds=1,
    )
    show(render_report(run.spans, run.registry))

    out_dir = os.environ.get("REPRO_BENCH_OUT", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_obs.json")
    text = bench_json(run)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)

    rec = json.loads(text)
    assert rec["schema"] == BENCH_SCHEMA_VERSION
    assert rec["completed"] and rec["n_restarts"] == 1
    assert rec["failures_injected"] == 1
    # delivered traffic balances exactly even through the kill + restart
    assert rec["traffic"]["bytes_sent"] == rec["traffic"]["bytes_recv"]
    assert rec["traffic"]["bytes_stranded"] >= 0
    # the recovery critical path starts at the restore that rebuilt state
    assert rec["recovery_path"] and rec["recovery_path"][0]["name"] == "restore"
    assert rec["n_interrupted_spans"] > 0
