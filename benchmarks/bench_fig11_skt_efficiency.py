"""Fig. 11 — original HPL vs SKT-HPL efficiency on Tianhe-1A / Tianhe-2."""

from repro.analysis import fig11_skt_efficiency
from repro.analysis.experiments import render_fig11


def bench_fig11(benchmark, show):
    rows = benchmark(fig11_skt_efficiency)
    show(render_fig11(rows))
    by_machine = {r["machine"]: r for r in rows}
    # section 6.4: SKT-HPL reaches 97.81% of original on TH-1A (47% of
    # memory) and 95.79% on TH-2 (44%); our model must land in that band
    # and preserve the machine ordering
    th1a = by_machine["Tianhe-1A"]["skt_vs_original"]
    th2 = by_machine["Tianhe-2"]["skt_vs_original"]
    assert th1a > th2
    assert 93.0 < th2 < 99.0
    assert 94.0 < th1a < 99.5
    assert abs(by_machine["Tianhe-1A"]["memory_fraction"] - 47.0) < 0.5
    assert abs(by_machine["Tianhe-2"]["memory_fraction"] - 44.0) < 0.5
