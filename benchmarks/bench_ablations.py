"""Ablation benches for the design choices DESIGN.md calls out:
group size, checkpoint interval, encoding operator, encode layout."""

from repro.analysis import (
    ablation_encoding_op,
    ablation_group_size,
    ablation_incremental,
    ablation_interval,
    ablation_stripe_vs_single_root,
)
from repro.analysis.ablations import (
    render_encoding_op,
    render_group_size,
    render_incremental,
    render_interval,
    render_stripe_vs_single,
)


def bench_ablation_group_size(benchmark, show):
    rows = benchmark(ablation_group_size, group_sizes=(2, 4, 8, 16, 32))
    show(render_group_size(rows))
    mems = [r["available_mem_pct"] for r in rows]
    times = [r["encode_s"] for r in rows]
    rel = [r["p_system_ok"] for r in rows]
    assert mems == sorted(mems)
    assert times == sorted(times)
    assert rel == sorted(rel, reverse=True)
    # the paper picks 16: most of the memory benefit is already banked
    g16 = next(r for r in rows if r["group_size"] == 16)
    g32 = next(r for r in rows if r["group_size"] == 32)
    assert g32["available_mem_pct"] - g16["available_mem_pct"] < 2.0


def bench_ablation_interval(benchmark, show):
    rows = benchmark(ablation_interval)
    show(render_interval(rows))
    best = min(rows, key=lambda r: r["expected_runtime_s"])
    young = next(r for r in rows if r["is_young_optimum"])
    assert young["expected_runtime_s"] <= best["expected_runtime_s"] * 1.02


def bench_ablation_encoding_op(benchmark, show):
    out = benchmark.pedantic(
        ablation_encoding_op,
        kwargs=dict(data_words=3 * 2048, group_size=4),
        iterations=1,
        rounds=1,
    )
    show(render_encoding_op(out))
    assert out["xor"]["max_error"] == 0.0  # bit exact
    assert out["sum"]["max_error"] < 1e-9  # within ulps


def bench_ablation_stripe_layout(benchmark, show):
    rows = benchmark(ablation_stripe_vs_single_root)
    show(render_stripe_vs_single(rows))
    for r in rows:
        assert r["single_root_s"] > 2 * r["stripe_s"]


def bench_ablation_rack_mapping(benchmark, show):
    """Paper §3.3: neighbour-preferring mappings are fast but a rack loss
    can take several of a group's stripes at once; spreading across racks
    buys rack tolerance for inter-switch bandwidth.  (The paper prioritizes
    performance because rack failures are 'minor'; this quantifies what
    that choice costs and saves.)"""
    from repro.analysis import ablation_rack_mapping
    from repro.analysis.ablations import render_rack_mapping

    rows = benchmark(ablation_rack_mapping)
    show(render_rack_mapping(rows))
    by = {r["strategy"]: r for r in rows}
    # the performance-priority mapping is fastest but rack-exposed
    assert by["block"]["encode_s"] < by["rack-spread"]["encode_s"]
    assert not by["block"]["survives_rack_loss"]
    # the reliability-priority mapping caps exposure at one stripe per rack
    assert by["rack-spread"]["survives_rack_loss"]
    assert by["rack-spread"]["max_group_members_per_rack"] == 1


def bench_ablation_incremental(benchmark, show):
    """Paper §1: 'incremental checkpoint methods are not efficient for
    this problem' — HPL dirties its whole footprint each interval."""
    rows = benchmark.pedantic(
        ablation_incremental,
        kwargs=dict(dirty_strides=(1, 2, 8)),
        iterations=1,
        rounds=1,
    )
    show(render_incremental(rows))
    full = next(r for r in rows if r["dirty_fraction"] == 1.0)
    sparse = min(rows, key=lambda r: r["dirty_fraction"])
    # full-footprint: incremental loses on BOTH time and memory
    assert full["incremental_ckpt_s"] > full["self_ckpt_s"]
    assert full["incremental_overhead_bytes"] > full["self_overhead_bytes"]
    # sparse footprint: incremental wins on checkpoint time
    assert sparse["incremental_ckpt_s"] < sparse["self_ckpt_s"]


def bench_ablation_double_parity(benchmark, show):
    """The RAID-6 extension (paper §2.1): memory cost vs failure tolerance
    of self vs self-rs groups."""
    from repro.ckpt import available_fraction_self, available_fraction_self_rs
    from repro.util import render_table

    def sweep(groups=(4, 8, 16, 32)):
        return [
            {
                "group_size": g,
                "self_pct": 100 * available_fraction_self(g),
                "self_rs_pct": 100 * available_fraction_self_rs(g),
                "self_tolerates": f"1 per {g}",
                "rs_tolerates": f"any 2 per {g}",
            }
            for g in groups
        ]

    rows = benchmark(sweep)
    show(
        render_table(
            ["group", "self mem %", "self-rs mem %", "self tolerates", "self-rs tolerates"],
            [
                [
                    r["group_size"],
                    f"{r['self_pct']:.1f}",
                    f"{r['self_rs_pct']:.1f}",
                    r["self_tolerates"],
                    r["rs_tolerates"],
                ]
                for r in rows
            ],
            title="Ablation — double-parity (RAID-6) self-checkpoint",
        )
    )
    for r in rows:
        # RS costs one extra stripe of memory...
        assert r["self_rs_pct"] < r["self_pct"]
        # ...and equals single-parity at half the group size
        g = r["group_size"]
        from repro.ckpt import available_fraction_self as afs

        assert abs(r["self_rs_pct"] / 100 - afs(g // 2)) < 1e-12
