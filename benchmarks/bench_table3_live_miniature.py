"""Table 3 (live miniature) — every method races the real distributed HPL
end-to-end on the simulator; nothing is model-derived here."""

from repro.analysis.experiments import render_table3_live, table3_live_miniature


def bench_table3_live(benchmark, show):
    rows = benchmark.pedantic(table3_live_miniature, iterations=1, rounds=1)
    show(render_table3_live(rows))
    eff = {r.method: r.normalized_efficiency for r in rows}
    mem = {r.method: r.overhead_bytes for r in rows}
    survive = {r.method: r.survives_poweroff for r in rows}

    # orderings measured live must echo the paper's table
    assert eff["Original HPL"] == 1.0
    assert eff["SKT-HPL (self)"] > eff["double"]
    assert eff["SKT-HPL (self)"] > eff["BLCR+HDD"]
    assert eff["double"] > eff["BLCR+HDD"]
    # memory: self-checkpoint overhead < double < buddy replication
    assert mem["SKT-HPL (self)"] < mem["double"] < mem["buddy(2)"]
    # survival: everything but the unprotected original recovers
    assert not survive["Original HPL"]
    for m in ("SKT-HPL (self)", "double", "buddy(2)", "BLCR+HDD", "BLCR+SSD"):
        assert survive[m], m
