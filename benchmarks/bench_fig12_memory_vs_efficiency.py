"""Fig. 12 — normalized efficiency vs memory fraction: model vs live runs."""

from repro.analysis import fig12_memory_vs_efficiency
from repro.analysis.experiments import render_fig12


def bench_fig12(benchmark, show):
    points = benchmark.pedantic(
        fig12_memory_vs_efficiency,
        kwargs=dict(fractions=(0.125, 0.2, 0.3, 0.44, 0.5)),
        iterations=1,
        rounds=1,
    )
    show(render_fig12(points))
    effs = [p.measured_norm_eff for p in points]
    assert effs == sorted(effs)  # more memory, more efficiency
    for p in points:
        # "our efficiency models can fit the test results very well"
        assert abs(p.model_norm_eff - p.measured_norm_eff) < 0.08
    # the self-vs-double comparison of section 6.5: 44% memory beats 30%
    at_double = min(points, key=lambda p: abs(p.memory_fraction - 0.3))
    at_self = min(points, key=lambda p: abs(p.memory_fraction - 0.44))
    assert at_self.measured_norm_eff > at_double.measured_norm_eff + 0.02
