"""Table 3 — the six-way fault-tolerant HPL comparison (the main table).

Performance columns are model-derived at the paper's 128-rank / 4 GB-per-
process scale; the power-off column is measured live (one fail/restart
cycle per method on the simulator).
"""

import pytest

from repro.analysis import table3_method_comparison
from repro.analysis.experiments import render_table3


@pytest.fixture(scope="module")
def rows():
    return table3_method_comparison()


def bench_table3(benchmark, show, rows):
    result = benchmark.pedantic(
        table3_method_comparison,
        kwargs=dict(run_live_checks=False),  # timing loop skips live runs
        iterations=1,
        rounds=3,
    )
    assert len(result) == 6
    show(render_table3(rows))

    eff = {r.method: r.normalized_efficiency for r in rows}
    mem = {r.method: r.available_mem_gb for r in rows}
    survive = {r.method: r.survives_poweroff for r in rows}

    # the paper's ordering: SKT > SCR > BLCR+SSD > ABFT > BLCR+HDD
    assert (
        eff["SKT-HPL"]
        > eff["SCR+Memory"]
        > eff["BLCR+SSD"]
        > eff["ABFT"]
        > eff["BLCR+HDD"]
    )
    # headline numbers: >94% of original, ~43% more memory than SCR
    assert eff["SKT-HPL"] > 0.94
    assert mem["SKT-HPL"] / mem["SCR+Memory"] > 1.4
    # survival column matches the paper exactly
    assert [survive[m] for m in (
        "Original HPL", "ABFT", "BLCR+HDD", "BLCR+SSD", "SCR+Memory", "SKT-HPL"
    )] == [False, False, True, True, True, True]
