"""Extension bench: checkpoint overhead on realistic kernels.

The paper reports SKT-HPL at >95% of original HPL; this bench measures the
same ratio for the library's other kernels (2-D stencil, CG) on the live
simulator — virtual time with checkpoints vs without.
"""

from repro.apps import (
    CGConfig,
    NBodyConfig,
    StencilConfig,
    cg_main,
    nbody_main,
    stencil_main,
)
from repro.sim import Cluster, Job
from repro.util import render_table


def _run(main, cfg, n_ranks):
    cluster = Cluster(n_ranks)
    res = Job(cluster, main, n_ranks, args=(cfg,), procs_per_node=1).run()
    assert res.completed, res.rank_errors
    return res.makespan


def measure_overheads():
    rows = []
    # stencil: with vs effectively-without checkpoints
    base = _run(
        stencil_main,
        StencilConfig(nx=32, ny_per_rank=8, steps=30, ckpt_every=1000),
        8,
    )
    with_ckpt = _run(
        stencil_main,
        StencilConfig(nx=32, ny_per_rank=8, steps=30, ckpt_every=5),
        8,
    )
    rows.append(("stencil-2d (ckpt every 5 steps)", base, with_ckpt))

    base = _run(
        cg_main, CGConfig(nx=16, ny_per_rank=4, ckpt_every=1000), 4
    )
    with_ckpt = _run(cg_main, CGConfig(nx=16, ny_per_rank=4, ckpt_every=10), 4)
    rows.append(("cg (ckpt every 10 iters)", base, with_ckpt))

    base = _run(
        nbody_main, NBodyConfig(bodies_per_rank=8, steps=30, ckpt_every=1000), 4
    )
    with_ckpt = _run(
        nbody_main, NBodyConfig(bodies_per_rank=8, steps=30, ckpt_every=5), 4
    )
    rows.append(("nbody (ckpt every 5 steps)", base, with_ckpt))
    return rows


def bench_kernel_checkpoint_overhead(benchmark, show):
    rows = benchmark.pedantic(measure_overheads, iterations=1, rounds=1)
    show(
        render_table(
            ["kernel", "no-ckpt (virtual s)", "with ckpt (virtual s)", "efficiency"],
            [
                [name, f"{b:.4f}", f"{w:.4f}", f"{100 * b / w:.1f}%"]
                for name, b, w in rows
            ],
            title="Extension — self-checkpoint overhead on library kernels",
        )
    )
    for name, base, with_ckpt in rows:
        assert with_ckpt >= base
        # in-memory checkpoints must stay cheap, as for SKT-HPL
        assert base / with_ckpt > 0.5, name
