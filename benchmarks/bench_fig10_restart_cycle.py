"""Fig. 10 — time per phase of a work-fail-detect-restart cycle."""

from repro.analysis import fig10_restart_cycle
from repro.analysis.experiments import render_fig10


def bench_fig10(benchmark, show):
    timing = benchmark.pedantic(
        fig10_restart_cycle, kwargs=dict(live=True), iterations=1, rounds=1
    )
    show(render_fig10(timing))
    # Fig. 10's measured phases on Tianhe-2: detect 63, replace 10,
    # restart 9, checkpoint 16, recover 20 (a little longer than ckpt)
    assert timing.detect_s == 63.0
    assert timing.replace_s == 10.0
    assert timing.restart_s == 9.0
    assert timing.checkpoint_s < timing.recover_s < 3 * timing.checkpoint_s
    assert 2.0 < timing.checkpoint_s < 20.0
