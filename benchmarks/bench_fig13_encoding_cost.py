"""Fig. 13 — encoding time and checkpoint size vs group size, per machine."""

import numpy as np

from repro.analysis import fig13_encoding_cost
from repro.analysis.experiments import render_fig13
from repro.ckpt import GroupEncoder
from repro.sim import Cluster, Job


def bench_fig13_model(benchmark, show):
    rows = benchmark(fig13_encoding_cost, group_sizes=(4, 8, 16))
    show(render_fig13(rows))
    th1a = {r["group_size"]: r for r in rows if r["machine"] == "Tianhe-1A"}
    th2 = {r["group_size"]: r for r in rows if r["machine"] == "Tianhe-2"}
    for g in (4, 8, 16):
        # Tianhe-2's checkpoints are smaller yet encode slower (port sharing)
        assert th2[g]["ckpt_bytes"] < th1a[g]["ckpt_bytes"]
        assert th2[g]["encode_s"] > th1a[g]["encode_s"]
    for m in (th1a, th2):
        assert m[4]["encode_s"] < m[8]["encode_s"] < m[16]["encode_s"]
        assert m[16]["encode_s"] < 2 * m[4]["encode_s"]  # grows slowly


def bench_fig13_live_encode(benchmark, show):
    """Live group encode on the simulator: wall time of the actual stripe
    arithmetic (the numpy XOR path a real deployment would run)."""

    def encode_once(group_size=8, words=32768):
        def main(ctx):
            enc = GroupEncoder(ctx.world)
            rng = np.random.default_rng(ctx.world.rank)
            flat = rng.integers(
                0, 256, 8 * (group_size - 1) * words, dtype=np.uint8
            )
            return enc.encode(flat).seconds

        cluster = Cluster(group_size)
        res = Job(cluster, main, group_size, procs_per_node=1).run()
        assert res.completed
        return res.rank_results[0]

    modeled = benchmark(encode_once)
    show(f"live encode of 8x{8*7*32768} bytes: modeled virtual time "
         f"{modeled * 1e3:.3f} ms")
    assert modeled > 0
