"""Fig. 6 — available memory of single/self/double vs group size."""

from repro.analysis import fig6_available_memory
from repro.analysis.experiments import render_fig6


def bench_fig6(benchmark, show):
    rows = benchmark(fig6_available_memory, group_sizes=(2, 3, 4, 8, 16, 32))
    show(render_fig6(rows))
    for r in rows:
        # paper ordering at every group size; self approaches 50 from below
        assert r["single"] > r["self"] > r["double"]
        assert r["self"] < 50.0
    by_g = {r["group_size"]: r for r in rows}
    assert abs(by_g[16]["self"] - 46.9) < 0.1  # the paper's "47%"
    assert abs(by_g[16]["double"] - 31.9) < 0.1
