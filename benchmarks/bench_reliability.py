"""Reliability projection bench: the paper's §1 motivation quantified —
fault-free completion probability collapses with scale while the grouped
in-memory checkpoint keeps per-interval survival near certainty."""

from repro.models.reliability import render_scale_sweep, scale_sweep


def bench_reliability_projection(benchmark, show):
    points = benchmark(scale_sweep)
    show(render_scale_sweep(points))
    assert points[-1].n_nodes == 65536
    # fault-free exascale-era runs are hopeless...
    assert points[-1].p_fault_free_run < 0.01
    # ...while one checkpoint interval survives with near-certainty
    assert points[-1].p_interval_ok_grouped > 0.95
    # trends monotone with scale
    ffs = [p.p_fault_free_run for p in points]
    assert ffs == sorted(ffs, reverse=True)
