"""Fig. 8 — modeled TOP-10 efficiency at full, half, and third memory."""

from repro.analysis import fig8_top10_projection
from repro.analysis.experiments import render_fig8
from repro.models.top500 import average_gain_half_vs_third


def bench_fig8(benchmark, show):
    rows = benchmark(fig8_top10_projection)
    show(render_fig8(rows))
    assert len(rows) == 10
    for r in rows:
        assert r["original"] > r["k=1/2"] > r["k=1/3"]
    # the paper's takeaway: these systems gain meaningfully from memory
    gain = average_gain_half_vs_third()
    show(f"average efficiency gain 1/3 -> 1/2 memory: {gain:.2f} points "
         "(paper reports ~12% with per-system fitted a > 1; Eq. 8's "
         "lower bound gives the conservative value printed here)")
    assert gain > 2.0
