"""Fig. 7 — the efficiency model fitted to live simulated-HPL runs."""

from repro.analysis import fig7_model_fit
from repro.analysis.experiments import render_fig7


def bench_fig7(benchmark, show):
    fit = benchmark.pedantic(
        fig7_model_fit,
        kwargs=dict(sizes=(96, 128, 192, 256, 384)),
        iterations=1,
        rounds=1,
    )
    show(render_fig7(fit))
    assert fit.r_squared > 0.9  # "fits well with real experimental data"
    assert fit.measured == sorted(fit.measured)  # efficiency rises with N
