"""Perf kernels — the encode math and the parallel replay engine.

Unlike the table/figure benches this one tracks the repo's own hot paths:
the cached GF(2^8) scale kernel (:meth:`repro.ckpt.raid6.GF256.vec_mul`)
against the seed's rebuild-the-table-per-call variant, the hoisted
:class:`~repro.ckpt.raid6.RSCodec` encode loop, double-parity group
throughput through :func:`repro.ckpt.stripes_rs.build_parity`, and the
:mod:`repro.par` replay engine on a small kill matrix (serial vs pooled,
asserting the artifacts stay identical).

The machine-readable record lands in ``BENCH_perf.json`` (next to the
working directory, override with ``REPRO_BENCH_OUT``).  Absolute timings
are hardware-bound, so the regression gate compares *speedup ratios*
against ``benchmarks/perf_baseline.json`` — a checked-in ratio shrinking
by more than ``REGRESSION_FACTOR`` means a kernel lost its optimization,
whatever the host.
"""

import json
import os
import time

import numpy as np

from repro.chaos.bench import bench_record
from repro.chaos.campaign import probe_baseline, run_kill_matrix
from repro.chaos.scenarios import selfckpt_scenario
from repro.ckpt.raid6 import GF256, RSCodec
from repro.ckpt.stripes_rs import build_parity, padded_size_rs
from repro.obs.metrics import MetricsRegistry
from repro.util.rng import seeded_rng

PERF_SCHEMA_VERSION = 2

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "perf_baseline.json")

#: a tracked speedup ratio may shrink by at most this factor vs baseline
REGRESSION_FACTOR = 3.0

#: vec_mul sweep: protocol stripes are tens-to-hundreds of bytes (a
#: padded member buffer splits into N-2 stripes), larger sizes cover the
#: full-buffer XOR/encode paths
GF_SIZES = (64, 256, 4096, 65536)

#: non-trivial field constants (2..33); c in {0, 1} short-circuits in
#: both kernels and would only measure the fast path
GF_CONSTANTS = tuple(range(2, 34))

#: matrix-form encode sweep: 64 KiB anchors against the small-stripe
#: rows above; 1 MiB and 8 MiB are the paper-scale checkpoint images the
#: batched bitsliced kernels exist for
MATRIX_SIZES = (65536, 1 << 20, 8 << 20)

#: stripes per group in the matrix sweep (group size 8 -> 6 data rows)
MATRIX_STRIPES = 6

#: stripe sizes at or above this must beat the pre-PR per-row loop by
#: MATRIX_MIN_SPEEDUP (the ISSUE's MB-scale acceptance floor)
MB_SCALE_BYTES = 1 << 20
MATRIX_MIN_SPEEDUP = 3.0


def _best_of(fn, repeats=7):
    """Minimum wall seconds over ``repeats`` runs (noise-floor timing)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _naive_vec_mul(gf, c, v):
    """The seed's kernel: rebuild the 256-entry row on every call."""
    if c == 0:
        return np.zeros_like(v)
    if c == 1:
        return v.copy()
    table = gf._exp[(gf._log[np.arange(256)] + gf._log[c]) % 255].astype(
        np.uint8
    )
    table[0] = 0
    return table[v]


def _naive_encode(gf, buffers):
    """The seed's P+Q loop: fresh table and scaled copy per buffer."""
    p = np.zeros_like(buffers[0])
    q = np.zeros_like(buffers[0])
    for j, d in enumerate(buffers):
        p = p ^ d
        q = q ^ _naive_vec_mul(gf, gf.pow_g(j), d)
    return p, q


def _measure_gf_vec_mul(gf, rng):
    out = []
    for size in GF_SIZES:
        v = rng.integers(0, 256, size=size).astype(np.uint8)
        loops = max(1, 4096 // size)

        def cached():
            for _ in range(loops):
                for c in GF_CONSTANTS:
                    gf.vec_mul(c, v)

        def naive():
            for _ in range(loops):
                for c in GF_CONSTANTS:
                    _naive_vec_mul(gf, c, v)

        calls = loops * len(GF_CONSTANTS)
        cached_s = _best_of(cached) / calls
        naive_s = _best_of(naive) / calls
        out.append(
            {
                "size": size,
                "cached_us": cached_s * 1e6,
                "naive_us": naive_s * 1e6,
                "speedup": naive_s / cached_s,
            }
        )
    return out


def _measure_rs_encode(gf, rng):
    out = []
    for size, k in ((88, 6), (1024, 6)):
        bufs = [
            rng.integers(0, 256, size=size).astype(np.uint8) for _ in range(k)
        ]
        codec = RSCodec(k)
        pn, qn = _naive_encode(gf, bufs)
        pc, qc = codec.encode(bufs)
        assert np.array_equal(pn, pc) and np.array_equal(qn, qc)
        loops = 16

        def cached():
            for _ in range(loops):
                codec.encode(bufs)

        def naive():
            for _ in range(loops):
                _naive_encode(gf, bufs)

        cached_s = _best_of(cached) / loops
        naive_s = _best_of(naive) / loops
        out.append(
            {
                "stripe_bytes": size,
                "n_stripes": k,
                "cached_us": cached_s * 1e6,
                "naive_us": naive_s * 1e6,
                "speedup": naive_s / cached_s,
            }
        )
    return out


def _prepr_encode(gf, buffers):
    """The pre-batching ``RSCodec.encode``: one cached-table gather per
    buffer with fresh P/Q allocations (the per-row loop the matrix-form
    kernels replaced)."""
    p = np.zeros_like(buffers[0])
    q = np.zeros_like(buffers[0])
    for j, d in enumerate(buffers):
        p ^= d
        gf.vec_mul_xor(gf.pow_g(j), d, q)
    return p, q


def _prepr_decode2(gf, survivors, p, q, x, y):
    """The pre-batching two-erasure ``RSCodec.decode`` solve."""
    pp = p.copy()
    qq = q.copy()
    for j, d in survivors.items():
        pp ^= d
        gf.vec_mul_xor(gf.pow_g(j), d, qq)
    gx, gy = gf.pow_g(x), gf.pow_g(y)
    denom = gx ^ gy
    a = gf.div(gy, denom)
    b = gf.inv(denom)
    dx = gf.vec_mul(a, pp) ^ gf.vec_mul(b, qq)
    dy = pp ^ dx
    return {x: dx, y: dy}


def _measure_matrix_encode(gf, rng):
    """Batched matrix-form encode vs the pre-PR per-row loop, with the
    bytes/s throughput series the obs trend tracks."""
    out = []
    k = MATRIX_STRIPES
    codec = RSCodec(k)
    for size in MATRIX_SIZES:
        bufs = [
            rng.integers(0, 256, size=size).astype(np.uint8) for _ in range(k)
        ]
        out_p = np.empty(size, dtype=np.uint8)
        out_q = np.empty(size, dtype=np.uint8)
        pr, qr = _prepr_encode(gf, bufs)
        codec.encode(bufs, out_p=out_p, out_q=out_q)
        assert np.array_equal(pr, out_p) and np.array_equal(qr, out_q)
        repeats = 5 if size >= MB_SCALE_BYTES else 7
        batched_s = _best_of(
            lambda: codec.encode(bufs, out_p=out_p, out_q=out_q), repeats
        )
        prepr_s = _best_of(lambda: _prepr_encode(gf, bufs), repeats)
        data_bytes = size * k
        out.append(
            {
                "stripe_bytes": size,
                "n_stripes": k,
                "batched_us": batched_s * 1e6,
                "per_row_us": prepr_s * 1e6,
                "speedup": prepr_s / batched_s,
                "encode_bytes_per_s": data_bytes / batched_s,
            }
        )
    return out


def _measure_matrix_decode(gf, rng):
    """Two-erasure decode throughput at MB scale vs the pre-PR solve."""
    size = MB_SCALE_BYTES
    k = MATRIX_STRIPES
    codec = RSCodec(k)
    bufs = [
        rng.integers(0, 256, size=size).astype(np.uint8) for _ in range(k)
    ]
    p, q = codec.encode(bufs)
    x, y = 0, k // 2
    survivors = {j: bufs[j] for j in range(k) if j not in (x, y)}
    outs = {x: np.empty(size, dtype=np.uint8), y: np.empty(size, dtype=np.uint8)}
    ref = _prepr_decode2(gf, survivors, p, q, x, y)
    got = codec.decode(survivors, p, q, out=outs)
    assert np.array_equal(ref[x], got[x]) and np.array_equal(ref[y], got[y])
    batched_s = _best_of(lambda: codec.decode(survivors, p, q, out=outs), 5)
    prepr_s = _best_of(lambda: _prepr_decode2(gf, survivors, p, q, x, y), 5)
    return {
        "stripe_bytes": size,
        "n_stripes": k,
        "erasures": 2,
        "batched_us": batched_s * 1e6,
        "per_row_us": prepr_s * 1e6,
        "speedup": prepr_s / batched_s,
        "decode_bytes_per_s": size * k / batched_s,
    }


def _host_metrics(matrix_encode, matrix_decode):
    """Kernel throughput as registered ``repro.obs`` host metrics.

    Routing through :class:`MetricsRegistry` keeps the names inside the
    closed ``METRIC_NAMES`` vocabulary (a typo here is a ValueError, and
    the simlint obs-label rule checks the literals statically)."""
    registry = MetricsRegistry()
    peak_encode = max(r["encode_bytes_per_s"] for r in matrix_encode)
    registry.gauge("ckpt.encode_bytes_per_s").set(peak_encode)
    registry.gauge("ckpt.decode_bytes_per_s").set(
        matrix_decode["decode_bytes_per_s"]
    )
    return {
        s.name: s.value for s in registry.samples() if s.kind == "gauge"
    }


def _measure_build_parity(rng):
    """Absolute double-parity group throughput (no naive twin — the
    layout cache changes complexity, not just constants)."""
    group_size = 8
    size = padded_size_rs(4096, group_size)
    bufs = [
        rng.integers(0, 256, size=size).astype(np.uint8)
        for _ in range(group_size)
    ]
    loops = 8

    def run():
        for _ in range(loops):
            build_parity(bufs, group_size)

    per_encode_s = _best_of(run) / loops
    total_bytes = size * group_size
    return {
        "group_size": group_size,
        "member_bytes": size,
        "encode_us": per_encode_s * 1e6,
        "mb_per_s": total_bytes / per_encode_s / 1e6,
    }


def _measure_replay():
    """Serial vs pooled kill matrix on a tiny scenario; artifacts must
    match exactly.  The speedup is recorded, not asserted — it tracks
    the host's core count (this container may have one)."""
    scenario = selfckpt_scenario(
        n_nodes=2, procs_per_node=1, group_size=2, iters=2, ckpt_every=1
    )
    probe = probe_baseline(scenario)

    t0 = time.perf_counter()
    serial = run_kill_matrix(scenario, probe=probe)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = run_kill_matrix(scenario, probe=probe, workers=2)
    parallel_s = time.perf_counter() - t0

    assert bench_record([serial], None, None, seed=0) == bench_record(
        [pooled], None, None, seed=0
    ), "parallel kill matrix diverged from the serial sweep"

    return {
        "kill_points": len(serial.results),
        "workers": 2,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "host_cpus": os.cpu_count(),
    }


def _measure_all():
    gf = GF256()
    rng = seeded_rng(7)
    matrix_encode = _measure_matrix_encode(gf, rng)
    matrix_decode = _measure_matrix_decode(gf, rng)
    return {
        "schema": PERF_SCHEMA_VERSION,
        "bench": "perf_kernels",
        "gf_vec_mul": _measure_gf_vec_mul(gf, rng),
        "rs_encode": _measure_rs_encode(gf, rng),
        "matrix_encode": matrix_encode,
        "matrix_decode": matrix_decode,
        "host_metrics": _host_metrics(matrix_encode, matrix_decode),
        "build_parity": _measure_build_parity(rng),
        "replay": _measure_replay(),
    }


def _check_baseline(record):
    """Ratio-based regression gate against the checked-in baseline."""
    if not os.path.exists(BASELINE_PATH):
        return
    with open(BASELINE_PATH, encoding="utf-8") as f:
        base = json.load(f)
    checks = []
    for cur, ref in zip(record["gf_vec_mul"], base["gf_vec_mul"]):
        checks.append((f"gf_vec_mul[{cur['size']}]", cur, ref))
    for cur, ref in zip(record["rs_encode"], base["rs_encode"]):
        checks.append((f"rs_encode[{cur['stripe_bytes']}]", cur, ref))
    for cur, ref in zip(
        record["matrix_encode"], base.get("matrix_encode", [])
    ):
        checks.append((f"matrix_encode[{cur['stripe_bytes']}]", cur, ref))
    if "matrix_decode" in base:
        checks.append(
            ("matrix_decode", record["matrix_decode"], base["matrix_decode"])
        )
    for name, cur, ref in checks:
        floor = ref["speedup"] / REGRESSION_FACTOR
        assert cur["speedup"] >= floor, (
            f"{name}: speedup {cur['speedup']:.2f}x fell below "
            f"{floor:.2f}x (baseline {ref['speedup']:.2f}x / "
            f"{REGRESSION_FACTOR}) — a kernel optimization regressed"
        )


def _render(record):
    lines = ["perf kernels", "============"]
    for row in record["gf_vec_mul"]:
        lines.append(
            f"gf.vec_mul   {row['size']:>6d} B  "
            f"{row['cached_us']:8.2f} us/call  vs naive "
            f"{row['naive_us']:8.2f} us  ({row['speedup']:.2f}x)"
        )
    for row in record["rs_encode"]:
        lines.append(
            f"rs.encode    {row['stripe_bytes']:>6d} B x{row['n_stripes']}  "
            f"{row['cached_us']:8.2f} us/call  vs naive "
            f"{row['naive_us']:8.2f} us  ({row['speedup']:.2f}x)"
        )
    for row in record["matrix_encode"]:
        lines.append(
            f"mat.encode  {row['stripe_bytes'] >> 10:>6d} KiB x{row['n_stripes']}  "
            f"{row['batched_us']:8.0f} us/call  vs per-row "
            f"{row['per_row_us']:8.0f} us  ({row['speedup']:.2f}x, "
            f"{row['encode_bytes_per_s'] / 1e9:.2f} GB/s)"
        )
    md = record["matrix_decode"]
    lines.append(
        f"mat.decode  {md['stripe_bytes'] >> 10:>6d} KiB x{md['n_stripes']}  "
        f"{md['batched_us']:8.0f} us/call  vs per-row "
        f"{md['per_row_us']:8.0f} us  ({md['speedup']:.2f}x, "
        f"{md['decode_bytes_per_s'] / 1e9:.2f} GB/s, 2 erasures)"
    )
    bp = record["build_parity"]
    lines.append(
        f"build_parity n={bp['group_size']} {bp['member_bytes']} B/member  "
        f"{bp['encode_us']:8.2f} us/group  ({bp['mb_per_s']:.1f} MB/s)"
    )
    rp = record["replay"]
    lines.append(
        f"kill matrix  {rp['kill_points']} points  serial "
        f"{rp['serial_s']:.2f} s vs {rp['workers']} workers "
        f"{rp['parallel_s']:.2f} s ({rp['speedup']:.2f}x on "
        f"{rp['host_cpus']} cpus)"
    )
    return "\n".join(lines)


def bench_perf_kernels(benchmark, show):
    record = benchmark.pedantic(_measure_all, iterations=1, rounds=1)
    show(_render(record))

    out_dir = os.environ.get("REPRO_BENCH_OUT", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_perf.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(record, f, indent=2, sort_keys=True)
        f.write("\n")

    # the ISSUE's headline number: the cached scale kernel beats the
    # rebuild-per-call seed by >= 5x at protocol stripe scale
    assert max(r["speedup"] for r in record["gf_vec_mul"]) >= 5.0, record[
        "gf_vec_mul"
    ]
    # every tracked kernel must at least not be slower than the seed
    assert all(r["speedup"] > 1.0 for r in record["rs_encode"]), record[
        "rs_encode"
    ]
    # MB-scale acceptance floor: the batched matrix-form kernels beat the
    # pre-PR per-row loop by >= 3x at paper-scale stripe sizes
    assert all(
        r["speedup"] >= MATRIX_MIN_SPEEDUP
        for r in record["matrix_encode"]
        if r["stripe_bytes"] >= MB_SCALE_BYTES
    ), record["matrix_encode"]
    assert record["matrix_decode"]["speedup"] > 1.0, record["matrix_decode"]
    assert record["host_metrics"]["ckpt.encode_bytes_per_s"] > 0
    assert record["replay"]["kill_points"] > 0
    _check_baseline(record)
