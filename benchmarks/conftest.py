"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one table or figure of the paper: it
runs the corresponding driver under ``pytest-benchmark`` (so the
regeneration cost is tracked run-to-run) and prints the same rows/series
the paper reports, with shape assertions inline.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_collection_modifyitems(items):
    # benchmarks are ordered by experiment id for readable output
    items.sort(key=lambda it: it.module.__name__)


@pytest.fixture
def show():
    """Print a rendered table under -s / captured otherwise."""

    def _show(text: str) -> None:
        print("\n" + text + "\n")

    return _show
