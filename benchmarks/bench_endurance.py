"""Endurance bench: the full stack under an MTBF failure storm, with the
first-order runtime model as the yardstick (extension beyond the paper's
single-failure validation)."""

from repro.analysis.endurance import endurance_run
from repro.util import render_table


def bench_endurance_storm(benchmark, show):
    report = benchmark.pedantic(
        endurance_run,
        kwargs=dict(
            iters=40, work_per_iter_s=10.0, mtbf_node_s=3000.0, seed=11
        ),
        iterations=1,
        rounds=1,
    )
    show(
        render_table(
            ["metric", "value"],
            [
                ["completed", report.completed],
                ["final state exact", report.final_state_ok],
                ["restarts", report.n_restarts],
                ["failures injected", report.failures_injected],
                ["fault-free work (virtual s)", f"{report.work_virtual_s:.0f}"],
                ["total with failures (virtual s)", f"{report.total_virtual_s:.0f}"],
                ["first-order model (s)", f"{report.model_expected_s:.0f}"],
            ],
            title="Endurance — self-checkpoint under an MTBF failure storm",
        )
    )
    assert report.completed and report.final_state_ok
