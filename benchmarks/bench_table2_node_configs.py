"""Table 2 — node configurations (the evaluation's input data, printed so
every table in the paper is literally regenerable)."""

from repro.analysis.experiments import render_table2, table2_node_configs
from repro.util import GiB


def bench_table2(benchmark, show):
    rows = benchmark(table2_node_configs)
    show(render_table2(rows))
    by = {r["machine"]: r for r in rows}
    th1a, th2 = by["Tianhe-1A"], by["Tianhe-2"]
    # Table 2 verbatim
    assert th1a["cores"] == 12 and th2["cores"] == 24
    assert th1a["peak_gflops"] == 140.0
    assert abs(th2["peak_gflops"] - 422.4) < 0.1
    assert th1a["mem_bytes"] == 48 * GiB and th2["mem_bytes"] == 64 * GiB
    assert th1a["p2p_bw_GBps"] == 6.9 and th2["p2p_bw_GBps"] == 7.1
    # the §6.6 port-sharing observation behind Fig. 13
    assert th2["procs_per_port"] == 2 * th1a["procs_per_port"]
    # and Table 2's memory-per-core remark
    assert (
        th1a["mem_bytes"] / th1a["cores"] > th2["mem_bytes"] / th2["cores"]
    )
