"""Table 1 — per-part memory usage of the self-checkpoint mechanism."""

from repro.analysis import table1_memory_breakdown
from repro.analysis.experiments import render_table1
from repro.util import GiB


def bench_table1(benchmark, show):
    row = benchmark(table1_memory_breakdown, workspace_bytes=GiB, group_size=16)
    show(render_table1(row))
    # Table 1: total = 2MN/(N-1); checksums = M/(N-1)
    assert row["total"] == 2 * GiB * 16 // 15
    assert row["C"] == row["D"] == GiB // 15
    assert 0.46 < row["available_fraction"] < 0.47


def bench_table1_group8(benchmark, show):
    """Table 3 uses group size 8: available fraction 43.75%."""
    row = benchmark(table1_memory_breakdown, workspace_bytes=4 * GiB, group_size=8)
    show(render_table1(row))
    assert abs(row["available_fraction"] - 7 / 16) < 1e-9
