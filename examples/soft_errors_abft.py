#!/usr/bin/env python
"""ABFT-HPL: silent-data-corruption detection and repair — and its limit.

Demonstrates the paper's ABFT baseline (section 6.2): checksum vectors
maintained through the elimination detect an injected bit-flip-style
corruption, localize it to the exact matrix entry, and repair it in place —
the run still passes verification.  But when a *node* is lost, ABFT has
nothing to recover from: its state lived in the dead process.

Run:  python examples/soft_errors_abft.py
"""

import numpy as np

from repro.hpl import HPLConfig, abft_hpl_main
from repro.hpl.abft import SoftErrorInjection
from repro.hpl.matgen import dense_matrix, dense_rhs
from repro.sim import Cluster, FailurePlan, Job, TimeTrigger


def main():
    cfg = HPLConfig(n=96, nb=8, p=2, q=2)

    print("== clean ABFT-HPL run ==")
    cluster = Cluster(4)
    res = Job(
        cluster, lambda ctx: abft_hpl_main(ctx, cfg), 4, procs_per_node=1
    ).run()
    r0 = res.rank_results[0]
    print(f"passed: {r0.hpl.passed}, checks run: {r0.checks_run}, "
          f"errors: {r0.errors_detected}")

    print("\n== inject a silent corruption on rank 2 after panel 4 ==")
    inj = SoftErrorInjection(panel=4, world_rank=2, magnitude=3.7)
    res = Job(
        cluster,
        lambda ctx: abft_hpl_main(ctx, cfg, inject=inj),
        4,
        procs_per_node=1,
    ).run()
    r2 = res.rank_results[2]
    print(f"detected: {r2.errors_detected}, corrected: {r2.errors_corrected}")
    x_ref = np.linalg.solve(dense_matrix(cfg), dense_rhs(cfg))
    err = float(np.max(np.abs(r2.hpl.x - x_ref)))
    print(f"verification: {'PASSED' if r2.hpl.passed else 'FAILED'}, "
          f"max |x - x_serial| = {err:.3e}")
    assert r2.errors_corrected >= 1 and r2.hpl.passed

    print("\n== but a permanent node loss is fatal for ABFT ==")
    cluster = Cluster(4, n_spares=1)
    plan = FailurePlan([TimeTrigger(node_id=1, at_time=1e-5)])
    res = Job(
        cluster,
        lambda ctx: abft_hpl_main(ctx, cfg),
        4,
        procs_per_node=1,
        failure_plan=plan,
    ).run()
    print(f"job aborted: {res.aborted}; surviving nodes hold "
          f"{sum(len(n.shm) for n in cluster.all_nodes() if n.alive)} SHM "
          "segments — nothing to restart from.")
    print("(this is the paper's Table 3 row: ABFT recovers after "
          "power-off: NO)")


if __name__ == "__main__":
    main()
