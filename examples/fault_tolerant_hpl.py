#!/usr/bin/env python
"""SKT-HPL: the paper's power-off validation (section 6.3) in miniature.

Runs the distributed HPL benchmark under the self-checkpoint mechanism,
powers a node off in the middle of the elimination loop, and lets the
master daemon detect the failure, swap in a spare, restart, and recover —
then verifies the solution against HPL's residual test and a serial
reference solve.

Run:  python examples/fault_tolerant_hpl.py
"""

import numpy as np

from repro.hpl import (
    HPLConfig,
    JobDaemon,
    RestartPolicy,
    SKTConfig,
    skt_hpl_main,
)
from repro.hpl.matgen import dense_matrix, dense_rhs
from repro.sim import Cluster, FailurePlan, PhaseTrigger


def main():
    cfg = HPLConfig(n=128, nb=8, p=2, q=4)  # 8 ranks, 16 panels
    scfg = SKTConfig(hpl=cfg, method="self", group_size=4, interval_panels=4)
    print(f"HPL: n={cfg.n}, nb={cfg.nb}, grid {cfg.p}x{cfg.q}, "
          f"{cfg.n_blocks} panels, checkpoint every {scfg.interval_panels}")

    cluster = Cluster(8, n_spares=2)
    plan = FailurePlan(
        [PhaseTrigger(node_id=5, phase="ckpt.flush", occurrence=2)]
    )
    daemon = JobDaemon(
        cluster,
        skt_hpl_main,
        cfg.n_ranks,
        args=(scfg,),
        procs_per_node=1,
        failure_plan=plan,
        policy=RestartPolicy(detect_s=63.0, replace_s=10.0, restart_s=9.0),
    )
    report = daemon.run()

    print(f"\ncompleted: {report.completed} after {report.n_restarts} restart(s)")
    for i, cycle in enumerate(report.cycles):
        print(
            f"  cycle {i}: worked {cycle.work_s:.1f}s (virtual), lost nodes "
            f"{cycle.failed_nodes}, replaced {cycle.replacements}, "
            f"downtime {cycle.detect_s + cycle.replace_s + cycle.restart_s:.0f}s"
        )

    r0 = report.result.rank_results[0]
    print(f"\nrestored from checkpoint: {r0.restored} "
          f"(source={r0.restore_source}, resumed at panel {r0.restored_panel})")
    print(f"HPL residual check: {r0.hpl.residual:.3e} "
          f"({'PASSED' if r0.hpl.passed else 'FAILED'})")

    x_ref = np.linalg.solve(dense_matrix(cfg), dense_rhs(cfg))
    err = float(np.max(np.abs(r0.hpl.x - x_ref)))
    print(f"max |x - x_serial| = {err:.3e}")
    assert report.completed and r0.hpl.passed and err < 1e-8
    print("\nSKT-HPL tolerated a permanent node loss and passed verification.")


if __name__ == "__main__":
    main()
