#!/usr/bin/env python
"""Quickstart: protect an iterative computation with self-checkpoint.

Runs a small SPMD job on the simulated cluster, checkpoints every few
iterations, powers a node off mid-run, and shows the daemon-style restart
recovering the exact state — including the replacement rank's data, rebuilt
from its group's surviving stripes and checksums.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.ckpt import CheckpointManager
from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger

N_RANKS = 8
GROUP_SIZE = 4
ITERATIONS = 10
CHECKPOINT_EVERY = 3


def app(ctx):
    """Each rank accumulates rank-dependent values into a protected array."""
    mgr = CheckpointManager(
        ctx, ctx.world, group_size=GROUP_SIZE, method="self"
    )
    # workspace arrays allocated through the manager live in SHM: the
    # workspace itself doubles as the in-flight checkpoint (the paper's A1)
    data = mgr.alloc("data", 1024)
    mgr.commit()

    report = mgr.try_restore()
    start = report.local["iteration"] if report else 0
    if report and ctx.world.rank == 0:
        print(
            f"  [rank 0] restored epoch {report.epoch} from {report.source!r}, "
            f"resuming at iteration {start}"
        )

    for it in range(start, ITERATIONS):
        data += np.sin(ctx.world.rank + 1.0)  # deterministic "work"
        ctx.compute(5e8)
        if (it + 1) % CHECKPOINT_EVERY == 0:
            mgr.local["iteration"] = it + 1
            info = mgr.checkpoint()
            if ctx.world.rank == 0:
                print(
                    f"  [rank 0] checkpoint epoch {info.epoch}: "
                    f"{info.protected_bytes}B protected, "
                    f"checksum {info.checksum_bytes}B, "
                    f"encode {info.encode_seconds * 1e3:.2f}ms (virtual)"
                )
    return data.copy()


def main():
    print("== fault-free run ==")
    cluster = Cluster(N_RANKS, n_spares=1)
    result = Job(cluster, app, N_RANKS, procs_per_node=1).run()
    expected = {r: result.rank_results[r] for r in range(N_RANKS)}
    print(f"completed: {result.completed}, virtual makespan "
          f"{result.makespan:.3f}s")

    print("\n== run with a node powered off during the 2nd checkpoint flush ==")
    cluster = Cluster(N_RANKS, n_spares=1)
    plan = FailurePlan(
        [PhaseTrigger(node_id=3, phase="ckpt.flush", occurrence=2)]
    )
    job = Job(cluster, app, N_RANKS, procs_per_node=1, failure_plan=plan)
    crashed = job.run()
    print(f"job aborted: {crashed.aborted}, failed nodes: {crashed.failed_nodes}")

    print("\n== daemon-style restart: spare node in, state recovered ==")
    replacements = cluster.replace_dead()
    print(f"replacements: {replacements}")
    ranklist = [replacements.get(n, n) for n in job.ranklist]
    rerun = Job(cluster, app, N_RANKS, ranklist=ranklist).run()
    print(f"completed: {rerun.completed}")

    for r in range(N_RANKS):
        np.testing.assert_array_equal(rerun.rank_results[r], expected[r])
    print("\nall ranks ended with EXACTLY the fault-free state — including "
          "the rank whose node was lost.")


if __name__ == "__main__":
    main()
