#!/usr/bin/env python
"""Two nodes die at the same instant — the RAID-6 extension shrugs it off.

The paper's XOR-based self-checkpoint tolerates one loss per encoding
group (§2.1 suggests RAID-6/Reed-Solomon "to tolerate more node
failures").  This example runs SKT-HPL once with the standard XOR scheme
and once with the double-parity Reed-Solomon variant (`method="self-rs"`),
powering off TWO nodes of the same group simultaneously mid-checkpoint:

* XOR: the restart finds two members missing and reports the state
  unrecoverable — honest failure;
* RS:  both members are reconstructed from the surviving stripes and the
  (P, Q) parity pair, the run resumes, and HPL verification passes.

Run:  python examples/double_failure_raid6.py
"""

import numpy as np

from repro.hpl import (
    HPLConfig,
    JobDaemon,
    RestartPolicy,
    SKTConfig,
    skt_hpl_main,
)
from repro.hpl.matgen import dense_matrix, dense_rhs
from repro.sim import Cluster, FailurePlan, PhaseTrigger

CFG = HPLConfig(n=96, nb=8, p=2, q=4)  # 8 ranks, one group of 8


def run(method):
    scfg = SKTConfig(hpl=CFG, method=method, group_size=8, interval_panels=3)
    cluster = Cluster(8, n_spares=4)
    plan = FailurePlan(
        [
            PhaseTrigger(
                node_id=2, phase="ckpt.flush", occurrence=2, extra_nodes=(5,)
            )
        ]
    )
    daemon = JobDaemon(
        cluster,
        skt_hpl_main,
        CFG.n_ranks,
        args=(scfg,),
        procs_per_node=1,
        failure_plan=plan,
        policy=RestartPolicy(max_restarts=2),
    )
    return daemon.run()


def main():
    print("== XOR self-checkpoint (tolerates 1 loss per group) ==")
    report = run("self")
    print(f"completed: {report.completed}  reason: {report.gave_up_reason}")
    assert not report.completed

    print("\n== Reed-Solomon self-checkpoint (tolerates any 2 per group) ==")
    report = run("self-rs")
    print(f"completed: {report.completed} after {report.n_restarts} restart(s)")
    r0 = report.result.rank_results[0]
    print(f"restored: {r0.restored} (source={r0.restore_source}, "
          f"panel {r0.restored_panel}); verification "
          f"{'PASSED' if r0.hpl.passed else 'FAILED'}")
    x_ref = np.linalg.solve(dense_matrix(CFG), dense_rhs(CFG))
    err = float(np.max(np.abs(r0.hpl.x - x_ref)))
    print(f"max |x - x_serial| = {err:.3e}")
    assert report.completed and r0.hpl.passed and err < 1e-8
    print("\nboth simultaneously-lost nodes were reconstructed; the "
          "memory cost is one extra parity stripe per rank.")


if __name__ == "__main__":
    main()
