#!/usr/bin/env python
"""Regenerate the paper's Table 3: six fault-tolerance strategies compared.

Performance columns come from the HPL efficiency model calibrated to the
paper's local-cluster testbed (128 ranks x 4 GB); the "recovers?" column is
decided by *live* simulator runs that power a node off during each method's
checkpoint-update window and attempt a daemon restart.

Also prints the memory-model curves behind Fig. 6 and the ablation of the
stripe-based encode.

Run:  python examples/method_comparison.py
"""

from repro.analysis import (
    ablation_stripe_vs_single_root,
    fig6_available_memory,
    table3_method_comparison,
)
from repro.analysis.ablations import render_stripe_vs_single
from repro.analysis.experiments import render_fig6, render_table3


def main():
    print(render_fig6(fig6_available_memory()))
    print()
    print("running live power-off checks (one small fail/restart cycle "
          "per method)...\n")
    rows = table3_method_comparison()
    print(render_table3(rows))
    print()
    print(render_stripe_vs_single(ablation_stripe_vs_single_root()))

    skt = next(r for r in rows if r.method == "SKT-HPL")
    scr = next(r for r in rows if r.method == "SCR+Memory")
    print(
        f"\nSKT-HPL offers {skt.available_mem_gb / scr.available_mem_gb - 1:.0%} "
        f"more application memory than the double-copy scheme and "
        f"{100 * (skt.normalized_efficiency - scr.normalized_efficiency):.1f} "
        "points higher normalized efficiency — the paper's headline result."
    )


if __name__ == "__main__":
    main()
