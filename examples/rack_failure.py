#!/usr/bin/env python
"""Surviving a whole-rack power-off: group mapping matters.

Paper §3.3: "for high reliability, a group should also spread its nodes as
far as possible to tolerate a single rack or switch failure" — and leaves
the mapping exploration to future work.  This example runs the same
checkpointed job twice on a racked cluster:

* with the **block** mapping (neighbour-preferring, the performance
  choice): a rack loss takes both members of a pair — unrecoverable;
* with the **rack-spread** mapping: every group spans racks, so the same
  rack loss costs each group at most one stripe — fully recovered, at a
  measurable inter-rack bandwidth cost during encodes.

Run:  python examples/rack_failure.py
"""

import numpy as np

from repro.ckpt import CheckpointManager
from repro.sim import Cluster, Job, Topology, fail_rack

N_RANKS = 8
TOPO = Topology(nodes_per_rack=4, inter_rack_bw_factor=0.5)
ITERS = 6


def make_app(strategy):
    def app(ctx):
        mgr = CheckpointManager(
            ctx,
            ctx.world,
            group_size=2,
            method="self",
            strategy=strategy,
            topology=TOPO,
        )
        data = mgr.alloc("data", 256)
        mgr.commit()
        report = mgr.try_restore()
        start = report.local["it"] if report else 0
        for it in range(start, ITERS):
            data += ctx.world.rank + 1
            ctx.compute(1e8)
            if (it + 1) % 2 == 0:
                mgr.local["it"] = it + 1
                mgr.checkpoint()
        return data.copy()

    return app


def run_scenario(strategy):
    cluster = Cluster(N_RANKS, n_spares=4)
    job = Job(
        cluster, make_app(strategy), N_RANKS, procs_per_node=1, topology=TOPO
    )
    assert job.run().completed
    victims = fail_rack(cluster, TOPO, rack=0)
    print(f"  rack 0 powered off: nodes {victims} lost together")
    replacements = cluster.replace_dead()
    ranklist = [replacements.get(n, n) for n in job.ranklist]
    rerun = Job(
        cluster, make_app(strategy), N_RANKS, ranklist=ranklist, topology=TOPO
    ).run()
    if rerun.completed:
        ok = all(
            np.all(rerun.rank_results[r] == ITERS * (r + 1))
            for r in range(N_RANKS)
        )
        print(f"  recovered: True (state exact: {ok})")
        return True
    kinds = sorted({type(e).__name__ for e in rerun.rank_errors.values()})
    print(f"  recovered: False ({', '.join(kinds)})")
    return False


def main():
    print("== block mapping (neighbour-preferring, rack-exposed) ==")
    block_ok = run_scenario("block")

    print("\n== rack-spread mapping (one stripe per rack per group) ==")
    spread_ok = run_scenario("rack-spread")

    assert not block_ok and spread_ok
    print(
        "\nthe rack-spread mapping turned a fatal switch loss into an "
        "ordinary single-stripe recovery per group."
    )


if __name__ == "__main__":
    main()
