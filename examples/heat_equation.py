#!/usr/bin/env python
"""Fault-tolerant 1-D heat diffusion: a halo-exchange stencil workload.

HPL is the paper's showcase, but self-checkpoint is "a general method and
not tied to any specified application" (section 6.1).  This example
protects a classic domain-decomposed Jacobi heat solver: each rank owns a
strip of the rod, exchanges boundary cells with its neighbours every step,
and checkpoints periodically.  A node is powered off mid-run; the restarted
job recovers and the final temperature field matches the fault-free run
bit for bit (XOR encoding is exact).

Run:  python examples/heat_equation.py
"""

import numpy as np

from repro.ckpt import CheckpointManager
from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger

N_RANKS = 8
CELLS_PER_RANK = 256
STEPS = 60
CHECKPOINT_EVERY = 20
ALPHA = 0.4  # diffusion number (stable: <= 0.5)


def heat_app(ctx):
    comm = ctx.world
    rank, size = comm.rank, comm.size
    mgr = CheckpointManager(ctx, comm, group_size=4, method="self", prefix="heat")
    u = mgr.alloc("u", CELLS_PER_RANK)
    mgr.commit()

    report = mgr.try_restore()
    start = report.local["step"] if report else 0
    if start == 0:
        # initial condition: a hot spike in the middle of the global rod
        globals_ = np.arange(rank * CELLS_PER_RANK, (rank + 1) * CELLS_PER_RANK)
        mid = N_RANKS * CELLS_PER_RANK // 2
        u[:] = 100.0 * np.exp(-((globals_ - mid) ** 2) / 500.0)

    for step in range(start, STEPS):
        # halo exchange with neighbours (fixed 0-temperature walls outside)
        left = comm.sendrecv(
            float(u[0]), dest=max(rank - 1, 0), source=max(rank - 1, 0),
            sendtag=1, recvtag=2,
        ) if rank > 0 else 0.0
        right = comm.sendrecv(
            float(u[-1]), dest=min(rank + 1, size - 1),
            source=min(rank + 1, size - 1), sendtag=2, recvtag=1,
        ) if rank < size - 1 else 0.0

        padded = np.concatenate(([left], u, [right]))
        u[:] = u + ALPHA * (padded[:-2] - 2 * u + padded[2:])
        ctx.compute(5.0 * CELLS_PER_RANK)

        if (step + 1) % CHECKPOINT_EVERY == 0 and step + 1 < STEPS:
            mgr.local["step"] = step + 1
            mgr.checkpoint()

    return u.copy()


def run(failure_plan=None, cluster=None, ranklist=None):
    cluster = cluster or Cluster(N_RANKS, n_spares=1)
    job = Job(
        cluster,
        heat_app,
        N_RANKS,
        procs_per_node=1,
        failure_plan=failure_plan,
        ranklist=ranklist,
    )
    return cluster, job, job.run()


def main():
    print("== fault-free reference run ==")
    _, _, ref = run()
    assert ref.completed
    total_heat = sum(float(np.sum(ref.rank_results[r])) for r in range(N_RANKS))
    print(f"final total heat: {total_heat:.4f}")

    print("\n== power a node off during the 2nd checkpoint ==")
    plan = FailurePlan([PhaseTrigger(node_id=2, phase="ckpt.encode", occurrence=2)])
    cluster, job, crashed = run(failure_plan=plan)
    print(f"aborted: {crashed.aborted}, failed nodes: {crashed.failed_nodes}")

    replacements = cluster.replace_dead()
    ranklist = [replacements.get(n, n) for n in job.ranklist]
    _, _, rerun = run(cluster=cluster, ranklist=ranklist)
    print(f"restarted run completed: {rerun.completed}")

    for r in range(N_RANKS):
        np.testing.assert_array_equal(rerun.rank_results[r], ref.rank_results[r])
    print("\nrecovered temperature field is bit-identical to the "
          "fault-free run on every rank.")


if __name__ == "__main__":
    main()
