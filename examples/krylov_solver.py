#!/usr/bin/env python
"""Fault-tolerant conjugate gradients: resuming mid-Krylov-iteration.

Self-checkpoint is application-agnostic (paper §6.1); this example protects
a distributed CG solve of a 2-D Laplacian system — the iterative-method
shape the ABFT literature targets (paper refs [7, 8]) — and shows that a
node power-off mid-solve resumes the *exact* Krylov trajectory: the
recovered run converges in the same iteration count to the same bits.

Run:  python examples/krylov_solver.py
"""

from repro.apps import CGConfig, cg_main
from repro.sim import Cluster, FailurePlan, Job, PhaseTrigger

import numpy as np

N_RANKS = 4
CFG = CGConfig(nx=24, ny_per_rank=6, max_iters=300, ckpt_every=20)


def run(plan=None, cluster=None, ranklist=None):
    cluster = cluster or Cluster(N_RANKS, n_spares=1)
    job = Job(
        cluster,
        cg_main,
        N_RANKS,
        args=(CFG,),
        procs_per_node=1,
        failure_plan=plan,
        ranklist=ranklist,
    )
    return cluster, job, job.run()


def main():
    print("== fault-free CG solve ==")
    _, _, ref = run()
    r0 = ref.rank_results[0]
    print(f"converged: {r0.converged} in {r0.iterations} iterations, "
          f"residual {r0.residual:.3e}")

    print("\n== power off a node during the 2nd checkpoint's encode ==")
    cluster = Cluster(N_RANKS, n_spares=1)
    plan = FailurePlan([PhaseTrigger(node_id=2, phase="ckpt.encode", occurrence=2)])
    _, job, crashed = run(plan=plan, cluster=cluster)
    print(f"aborted: {crashed.aborted}, failed nodes: {crashed.failed_nodes}")

    repl = cluster.replace_dead()
    ranklist = [repl.get(n, n) for n in job.ranklist]
    _, _, rerun = run(cluster=cluster, ranklist=ranklist)
    r = rerun.rank_results[0]
    print(f"resumed at Krylov iteration {r.restored_iteration}; "
          f"converged in {r.iterations} iterations, residual {r.residual:.3e}")

    for rank in range(N_RANKS):
        np.testing.assert_array_equal(
            rerun.rank_results[rank].x, ref.rank_results[rank].x
        )
    assert r.iterations == r0.iterations
    print("\nrecovered solve is bit-identical to the fault-free trajectory.")


if __name__ == "__main__":
    main()
